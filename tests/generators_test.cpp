// Unit tests for graph generators and latency models.

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "graph/latency_models.h"

namespace latgossip {
namespace {

TEST(Generators, Path) {
  const auto g = make_path(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Generators, SingleNodePath) {
  const auto g = make_path(1);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Generators, Cycle) {
  const auto g = make_cycle(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_THROW(make_cycle(2), std::invalid_argument);
}

TEST(Generators, Star) {
  const auto g = make_star(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  EXPECT_EQ(g.max_degree(), 6u);
}

TEST(Generators, Clique) {
  const auto g = make_clique(6);
  EXPECT_EQ(g.num_edges(), 15u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(Generators, CompleteBipartite) {
  const auto g = make_complete_bipartite(3, 4);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_EQ(g.degree(0), 4u);  // left side
  EXPECT_EQ(g.degree(3), 3u);  // right side
  EXPECT_FALSE(g.has_edge(0, 1));  // no intra-side edges
  EXPECT_TRUE(g.has_edge(0, 3));
}

TEST(Generators, Grid) {
  const auto g = make_grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);  // rows*(cols-1)+ (rows-1)*cols
  EXPECT_TRUE(g.is_connected());
}

TEST(Generators, Torus) {
  const auto g = make_grid(3, 3, /*wrap=*/true);
  EXPECT_EQ(g.num_edges(), 18u);
  for (NodeId v = 0; v < 9; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, Hypercube) {
  const auto g = make_hypercube(4);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, BinaryTree) {
  const auto g = make_binary_tree(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(6), 1u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Generators, ErdosRenyiConnected) {
  Rng rng(5);
  const auto g = make_erdos_renyi(40, 0.2, rng);
  EXPECT_EQ(g.num_nodes(), 40u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Generators, ErdosRenyiRejectsBadP) {
  Rng rng(5);
  EXPECT_THROW(make_erdos_renyi(10, 1.5, rng), std::invalid_argument);
}

TEST(Generators, RandomRegularDegreesExact) {
  Rng rng(11);
  const auto g = make_random_regular(20, 4, rng);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Generators, RandomRegularValidatesParity) {
  Rng rng(11);
  EXPECT_THROW(make_random_regular(5, 3, rng), std::invalid_argument);
  EXPECT_THROW(make_random_regular(5, 5, rng), std::invalid_argument);
}

TEST(Generators, WattsStrogatz) {
  Rng rng(13);
  const auto g = make_watts_strogatz(30, 2, 0.1, rng);
  EXPECT_EQ(g.num_nodes(), 30u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_GE(g.num_edges(), 30u);  // ~n*k edges, some may collide
}

TEST(Generators, RandomGeometricWithCoords) {
  Rng rng(17);
  std::vector<std::pair<double, double>> coords;
  const auto g = make_random_geometric(50, 0.35, rng, &coords);
  EXPECT_TRUE(g.is_connected());
  ASSERT_EQ(coords.size(), 50u);
  // Every edge respects the radius.
  for (const Edge& e : g.edges()) {
    const double dx = coords[e.u].first - coords[e.v].first;
    const double dy = coords[e.u].second - coords[e.v].second;
    EXPECT_LE(dx * dx + dy * dy, 0.35 * 0.35 + 1e-12);
  }
}

TEST(Generators, RingOfCliques) {
  const auto g = make_ring_of_cliques(4, 5, 9);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_EQ(g.num_edges(), 4 * 10 + 4);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.max_latency(), 9);
}

TEST(Generators, Dumbbell) {
  const auto g = make_dumbbell(4, 3, 5);
  EXPECT_EQ(g.num_nodes(), 2 * 4 + 2u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.max_latency(), 5);
}

TEST(Generators, BarabasiAlbert) {
  Rng rng(21);
  const auto g = make_barabasi_albert(60, 2, rng);
  EXPECT_EQ(g.num_nodes(), 60u);
  EXPECT_TRUE(g.is_connected());
  // Seed clique C(2,2)=1 edge + 58 nodes * 2 attachments.
  EXPECT_EQ(g.num_edges(), 1u + 58u * 2u);
  // Preferential attachment produces a hub far above the minimum degree.
  EXPECT_GE(g.max_degree(), 8u);
  EXPECT_THROW(make_barabasi_albert(3, 3, rng), std::invalid_argument);
}

TEST(Generators, KaryTree) {
  const auto g = make_kary_tree(13, 3);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.degree(0), 3u);   // root has children 1,2,3
  EXPECT_EQ(g.degree(1), 4u);   // children 4,5,6 + parent
  EXPECT_EQ(g.degree(12), 1u);  // leaf
  EXPECT_THROW(make_kary_tree(5, 1), std::invalid_argument);
}

TEST(Generators, PathOfCliques) {
  const auto g = make_path_of_cliques(3, 4, 7);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 6u + 2u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.max_latency(), 7);
  EXPECT_THROW(make_path_of_cliques(1, 4), std::invalid_argument);
}

// --------------------------------------------------------- latency models

TEST(LatencyModels, Uniform) {
  auto g = make_cycle(5);
  assign_uniform_latency(g, 7);
  for (const Edge& e : g.edges()) EXPECT_EQ(e.latency, 7);
}

TEST(LatencyModels, RandomUniformRange) {
  auto g = make_clique(10);
  Rng rng(3);
  assign_random_uniform_latency(g, 2, 6, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.latency, 2);
    EXPECT_LE(e.latency, 6);
  }
  EXPECT_THROW(assign_random_uniform_latency(g, 5, 2, rng),
               std::invalid_argument);
}

TEST(LatencyModels, TwoLevel) {
  auto g = make_clique(20);
  Rng rng(7);
  assign_two_level_latency(g, 1, 100, 0.5, rng);
  std::size_t fast = 0, slow = 0;
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(e.latency == 1 || e.latency == 100);
    (e.latency == 1 ? fast : slow) += 1;
  }
  EXPECT_GT(fast, 0u);
  EXPECT_GT(slow, 0u);
}

TEST(LatencyModels, ParetoClamped) {
  auto g = make_clique(12);
  Rng rng(9);
  assign_pareto_latency(g, 1.5, 1.0, 50, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.latency, 1);
    EXPECT_LE(e.latency, 50);
  }
}

TEST(LatencyModels, DistanceBased) {
  auto g = make_path(3);
  const std::vector<std::pair<double, double>> coords{
      {0.0, 0.0}, {0.3, 0.4}, {0.3, 0.4}};
  assign_distance_latency(g, coords, 10.0);
  EXPECT_EQ(g.latency(*g.find_edge(0, 1)), 5);  // 10 * 0.5
  EXPECT_EQ(g.latency(*g.find_edge(1, 2)), 1);  // clamped to >= 1
}

TEST(LatencyModels, CustomRule) {
  auto g = make_path(4);
  assign_latency(g, [](const Edge& e) {
    return static_cast<Latency>(e.u + e.v + 1);
  });
  EXPECT_EQ(g.latency(*g.find_edge(0, 1)), 2);
  EXPECT_EQ(g.latency(*g.find_edge(2, 3)), 6);
}

}  // namespace
}  // namespace latgossip
