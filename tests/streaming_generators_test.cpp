// Tests for the two-pass streaming CSR builder and the streaming
// generator family (graph/builder.h, graph/generators.h): exact
// bit-identity with the edge-list builders where the emission order
// matches (ring, torus, Barabasi–Albert, p=1 Erdos–Renyi), structural
// invariants plus same-seed determinism for the random families.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace latgossip {
namespace {

// Every observable array of the CSR: node/edge counts, the edge list in
// id order (endpoints + latency), and each adjacency slice (neighbor and
// edge id per half-edge).
void expect_identical(const WeightedGraph& a, const WeightedGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    ASSERT_EQ(a.edge(e).u, b.edge(e).u) << "edge " << e;
    ASSERT_EQ(a.edge(e).v, b.edge(e).v) << "edge " << e;
    ASSERT_EQ(a.edge(e).latency, b.edge(e).latency) << "edge " << e;
  }
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    const auto na = a.neighbors(u), nb = b.neighbors(u);
    ASSERT_EQ(na.size(), nb.size()) << "node " << u;
    for (std::size_t i = 0; i < na.size(); ++i) {
      ASSERT_EQ(na[i].to, nb[i].to) << "node " << u << " slot " << i;
      ASSERT_EQ(na[i].edge, nb[i].edge) << "node " << u << " slot " << i;
    }
  }
  ASSERT_EQ(a.max_degree(), b.max_degree());
}

TEST(StreamingCsrBuilder, MatchesGraphBuilder) {
  GraphBuilder ref(5);
  ref.add_edge(0, 1, 2);
  ref.add_edge(3, 1, 1);
  ref.add_edge(4, 0, 7);
  ref.add_edge(2, 3, 1);
  const auto expected = ref.build();

  StreamingCsrBuilder b(5);
  b.count_edge(0, 1);
  b.count_edge(3, 1);
  b.count_edge(4, 0);
  b.count_edge(2, 3);
  b.finish_count();
  b.fill_edge(0, 1, 2);
  b.fill_edge(3, 1, 1);
  b.fill_edge(4, 0, 7);
  b.fill_edge(2, 3, 1);
  expect_identical(b.build(), expected);
}

TEST(StreamingCsrBuilder, ValidatesEagerly) {
  StreamingCsrBuilder b(4);
  EXPECT_THROW(b.count_edge(1, 1), std::invalid_argument);  // self-loop
  EXPECT_THROW(b.count_edge(0, 4), std::out_of_range);
  EXPECT_THROW(b.fill_edge(0, 1), std::logic_error);  // before finish_count
  b.count_edge(0, 1);
  b.finish_count();
  EXPECT_THROW(b.count_edge(1, 2), std::logic_error);  // after finish_count
  EXPECT_THROW(b.finish_count(), std::logic_error);
  EXPECT_THROW(b.fill_edge(0, 1, 0), std::invalid_argument);  // latency < 1
}

TEST(StreamingCsrBuilder, RejectsDuplicateEdges) {
  StreamingCsrBuilder b(3);
  b.count_edge(0, 1);
  b.count_edge(1, 0);  // same undirected edge, other orientation
  b.finish_count();
  b.fill_edge(0, 1);
  b.fill_edge(1, 0);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(StreamingCsrBuilder, RejectsPassMismatch) {
  {
    StreamingCsrBuilder b(4);
    b.count_edge(0, 1);
    b.count_edge(1, 2);
    b.finish_count();
    b.fill_edge(0, 1);
    EXPECT_THROW(b.build(), std::invalid_argument);  // one edge short
  }
  {
    StreamingCsrBuilder b(4);
    b.count_edge(0, 1);
    b.finish_count();
    b.fill_edge(0, 1);
    EXPECT_THROW(b.fill_edge(1, 2), std::invalid_argument);  // one extra
  }
  {
    // Same count but different endpoints: node 3's slice was sized at
    // zero in pass 1, so its cursor overruns immediately.
    StreamingCsrBuilder b(4);
    b.count_edge(0, 1);
    b.count_edge(0, 2);
    b.finish_count();
    EXPECT_THROW(b.fill_edge(0, 3), std::invalid_argument);
  }
}

TEST(StreamingCsrBuilder, ReusableAfterBuild) {
  StreamingCsrBuilder b(3);
  b.count_edge(0, 1);
  b.finish_count();
  b.fill_edge(0, 1);
  const auto g1 = b.build();
  EXPECT_EQ(g1.num_edges(), 1u);
  // Builder is back in counting mode for a fresh (differently sized)
  // graph. (Re-seating num_nodes requires a fresh builder; reuse keeps
  // the same node count at zero — construct anew for clarity.)
  StreamingCsrBuilder b2(2);
  b2.count_edge(0, 1);
  b2.finish_count();
  b2.fill_edge(0, 1);
  EXPECT_EQ(b2.build().num_edges(), 1u);
}

TEST(StreamingCsrBuilder, ConvenienceWrapper) {
  const auto g = build_csr_streaming(4, [](auto&& edge) {
    for (NodeId i = 0; i + 1 < 4; ++i) edge(i, i + 1);
  });
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.is_connected());
  expect_identical(g, make_path(4));
}

// --- bit-identity with the edge-list twins ---------------------------------

TEST(StreamingGenerators, RingMatchesCycle) {
  for (const std::size_t n : {3u, 7u, 64u, 1001u})
    expect_identical(make_ring_streaming(n), make_cycle(n));
  EXPECT_THROW(make_ring_streaming(2), std::invalid_argument);
}

TEST(StreamingGenerators, TorusMatchesWrappedGrid) {
  expect_identical(make_torus_streaming(3, 3), make_grid(3, 3, true));
  expect_identical(make_torus_streaming(5, 8), make_grid(5, 8, true));
  EXPECT_THROW(make_torus_streaming(2, 5), std::invalid_argument);
}

TEST(StreamingGenerators, PreferentialAttachmentMatchesBarabasiAlbert) {
  for (const std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    Rng rng(seed);
    const auto ref = make_barabasi_albert(500, 3, rng);
    const auto streamed = make_preferential_attachment_streaming(500, 3, seed);
    expect_identical(streamed, ref);
  }
  EXPECT_THROW(make_preferential_attachment_streaming(3, 3, 1),
               std::invalid_argument);
}

TEST(StreamingGenerators, FullDensityErMatchesClique) {
  expect_identical(make_erdos_renyi_streaming(40, 1.0, 9), make_clique(40));
}

// --- invariants + determinism for the random families ----------------------

TEST(StreamingGenerators, ErdosRenyiInvariants) {
  const std::size_t n = 200;
  const double p = 0.1;
  const auto g = make_erdos_renyi_streaming(n, p, 0x5eed);
  EXPECT_EQ(g.num_nodes(), n);
  EXPECT_TRUE(g.is_connected());
  // Binomial(19900, 0.1): mean 1990, sd ~42. ±10 sd keeps this test
  // deterministic-by-seed yet meaningful.
  EXPECT_GT(g.num_edges(), 1570u);
  EXPECT_LT(g.num_edges(), 2410u);
  EXPECT_THROW(make_erdos_renyi_streaming(10, 1.5, 0), std::invalid_argument);
  // p = 0 on n > 1 can never connect: the attempt budget must trip.
  EXPECT_THROW(make_erdos_renyi_streaming(10, 0.0, 0, 4), std::runtime_error);
  EXPECT_EQ(make_erdos_renyi_streaming(1, 0.0, 0).num_nodes(), 1u);
}

TEST(StreamingGenerators, ErdosRenyiDeterministicInSeed) {
  const auto a = make_erdos_renyi_streaming(300, 0.05, 77);
  const auto b = make_erdos_renyi_streaming(300, 0.05, 77);
  expect_identical(a, b);
  const auto c = make_erdos_renyi_streaming(300, 0.05, 78);
  EXPECT_FALSE(a.num_edges() == c.num_edges() &&
               [&] {
                 for (EdgeId e = 0; e < a.num_edges(); ++e)
                   if (a.edge(e).u != c.edge(e).u || a.edge(e).v != c.edge(e).v)
                     return false;
                 return true;
               }());
}

TEST(StreamingGenerators, RandomRegularInvariants) {
  const std::size_t n = 1000, d = 6;
  const auto g = make_random_regular_streaming(n, d, 0xABCD);
  EXPECT_EQ(g.num_nodes(), n);
  EXPECT_EQ(g.num_edges(), n * d / 2);
  EXPECT_TRUE(g.is_connected());
  for (NodeId u = 0; u < n; ++u) ASSERT_EQ(g.degree(u), d) << "node " << u;
  EXPECT_THROW(make_random_regular_streaming(5, 5, 0), std::invalid_argument);
  EXPECT_THROW(make_random_regular_streaming(5, 3, 0), std::invalid_argument);
  EXPECT_THROW(make_random_regular_streaming(5, 0, 0), std::invalid_argument);
}

TEST(StreamingGenerators, RandomRegularOddDegreeAndSmallCases) {
  // d odd (n even) exercises the repair path's parity handling.
  const auto g = make_random_regular_streaming(100, 3, 7);
  for (NodeId u = 0; u < 100; ++u) ASSERT_EQ(g.degree(u), 3u);
  EXPECT_TRUE(g.is_connected());
  // d = n-1 is the clique; the pairing has no freedom left.
  const auto k = make_random_regular_streaming(6, 5, 1);
  EXPECT_EQ(k.num_edges(), 15u);
  for (NodeId u = 0; u < 6; ++u) ASSERT_EQ(k.degree(u), 5u);
}

TEST(StreamingGenerators, RandomRegularDeterministicInSeed) {
  const auto a = make_random_regular_streaming(400, 4, 99);
  const auto b = make_random_regular_streaming(400, 4, 99);
  expect_identical(a, b);
}

}  // namespace
}  // namespace latgossip
