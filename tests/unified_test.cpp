// Tests for the unified dissemination algorithm (Theorem 20).

#include <gtest/gtest.h>

#include "core/unified.h"
#include "graph/generators.h"
#include "graph/latency_models.h"

namespace latgossip {
namespace {

TEST(Unified, CompletesKnownLatencies) {
  auto g = make_ring_of_cliques(3, 4, 3);
  Rng rng(1);
  UnifiedOptions opts;
  opts.latencies_known = true;
  const UnifiedOutcome out = run_unified(g, opts, rng);
  EXPECT_TRUE(out.completed);
  EXPECT_TRUE(out.push_pull_completed);
  EXPECT_TRUE(out.spanner_completed);
  EXPECT_EQ(out.unified_rounds,
            std::min(out.push_pull_rounds, out.spanner_rounds));
}

TEST(Unified, CompletesUnknownLatencies) {
  Rng gen(3);
  auto g = make_erdos_renyi(12, 0.35, gen);
  assign_random_uniform_latency(g, 1, 4, gen);
  Rng rng(5);
  UnifiedOptions opts;
  opts.latencies_known = false;
  const UnifiedOutcome out = run_unified(g, opts, rng);
  EXPECT_TRUE(out.completed);
  EXPECT_TRUE(out.spanner_completed);
}

TEST(Unified, PushPullWinsOnWellConnectedGraph) {
  // Unit clique: push-pull finishes in O(log n); EID pays its polylog
  // overhead, so push-pull should win.
  const auto g = make_clique(24);
  Rng rng(7);
  UnifiedOptions opts;
  opts.latencies_known = true;
  const UnifiedOutcome out = run_unified(g, opts, rng);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.winner, UnifiedWinner::kPushPull);
}

TEST(Unified, WinnerHasMinimumRounds) {
  auto g = make_dumbbell(5, 2, 4);
  Rng rng(9);
  UnifiedOptions opts;
  opts.latencies_known = true;
  const UnifiedOutcome out = run_unified(g, opts, rng);
  ASSERT_TRUE(out.completed);
  if (out.winner == UnifiedWinner::kPushPull) {
    EXPECT_EQ(out.unified_rounds, out.push_pull_rounds);
    if (out.spanner_completed) {
      EXPECT_LE(out.push_pull_rounds, out.spanner_rounds);
    }
  } else {
    EXPECT_EQ(out.unified_rounds, out.spanner_rounds);
  }
}

TEST(Unified, PushPullCapGivesUpButSpannerStillFinishes) {
  auto g = make_ring_of_cliques(3, 3, 2);
  Rng rng(11);
  UnifiedOptions opts;
  opts.latencies_known = true;
  opts.push_pull_cap = 1;  // force the push-pull branch to time out
  const UnifiedOutcome out = run_unified(g, opts, rng);
  EXPECT_FALSE(out.push_pull_completed);
  EXPECT_TRUE(out.spanner_completed);
  EXPECT_EQ(out.winner, UnifiedWinner::kSpanner);
  EXPECT_TRUE(out.completed);
}

TEST(Unified, DeterministicGivenSeed) {
  auto g = make_ring_of_cliques(3, 3, 2);
  Rng r1(13), r2(13);
  UnifiedOptions opts;
  opts.latencies_known = true;
  const UnifiedOutcome a = run_unified(g, opts, r1);
  const UnifiedOutcome b = run_unified(g, opts, r2);
  EXPECT_EQ(a.push_pull_rounds, b.push_pull_rounds);
  EXPECT_EQ(a.spanner_rounds, b.spanner_rounds);
}

}  // namespace
}  // namespace latgossip
