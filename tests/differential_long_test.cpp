// Long-tier differential sweep (ctest -L long; built only with
// LATGOSSIP_LONG_TESTS=ON): the same engine-vs-oracle comparison as
// differential_test.cpp, but over a wider case profile — more nodes,
// larger latencies, many more cases — for the scheduled-CI budget
// rather than the tier-1 budget.

#include <sstream>

#include <gtest/gtest.h>

#include "check/case_gen.h"
#include "check/differential.h"

namespace latgossip {
namespace {

TEST(DifferentialLong, WideProfileSweep) {
  Rng rng(0xeadbeef);
  CaseProfile profile;
  profile.max_nodes = 24;
  profile.max_latency = 17;
  for (int i = 0; i < 10000; ++i) {
    const TestCase tc = random_case(rng, profile);
    ASSERT_TRUE(case_valid(tc)) << describe(tc);
    const DiffReport rep = run_differential(tc);
    if (!rep.ok) {
      std::ostringstream os;
      for (const std::string& f : rep.failures) os << "  " << f << "\n";
      write_case(os, tc);
      FAIL() << "divergence on " << describe(tc) << "\n" << os.str();
    }
  }
}

}  // namespace
}  // namespace latgossip
