// Long-tier differential sweep (ctest -L long; built only with
// LATGOSSIP_LONG_TESTS=ON): the same engine-vs-oracle comparison as
// differential_test.cpp, but over a wider case profile — more nodes,
// larger latencies, many more cases — for the scheduled-CI budget
// rather than the tier-1 budget.

#include <sstream>

#include <gtest/gtest.h>

#include "check/case_gen.h"
#include "check/differential.h"

namespace latgossip {
namespace {

void run_or_dump(const TestCase& tc) {
  const DiffReport rep = run_differential(tc);
  if (!rep.ok) {
    std::ostringstream os;
    for (const std::string& f : rep.failures) os << "  " << f << "\n";
    write_case(os, tc);
    FAIL() << "divergence on " << describe(tc) << "\n" << os.str();
  }
}

TEST(DifferentialLong, WideProfileSweep) {
  Rng rng(0xeadbeef);
  CaseProfile profile;
  profile.max_nodes = 24;
  profile.max_latency = 17;
  // allow_dynamics defaults on: roughly a quarter of the simple-protocol
  // cases run under drift / churn / adversarial schedules.
  for (int i = 0; i < 10000; ++i) {
    const TestCase tc = random_case(rng, profile);
    ASSERT_TRUE(case_valid(tc)) << describe(tc);
    run_or_dump(tc);
  }
}

// Dynamics-saturated leg: every case carries a dynamic scenario, with
// all three schedules stacked on every fourth case, over the wide
// profile. This is where slow drift-walk corner states (deep clamp
// saturation, long absences) get the iterations they need.
TEST(DifferentialLong, ForcedDynamicsSweep) {
  Rng rng(0x1a7e);
  CaseProfile profile;
  profile.max_nodes = 20;
  profile.max_latency = 17;
  profile.composites = false;
  profile.allow_dynamics = false;  // forced below instead
  for (int i = 0; i < 2000; ++i) {
    TestCase tc = random_case(rng, profile);
    tc.dynamics.seed = 0xd00d + static_cast<std::uint64_t>(i);
    if (i % 4 == 0 || i % 4 == 3) {
      tc.dynamics.drift_step = 16u << (i % 6);
      tc.dynamics.drift_bound = (i % 2) != 0 ? 2048 : 1024 * 64;
    }
    if (i % 4 == 1 || i % 4 == 3) {
      tc.dynamics.churn_prob = 0.2 + 0.07 * static_cast<double>(i % 10);
      tc.dynamics.churn_window = 4 + (i % 20);
      tc.dynamics.churn_absence = 1 + (i % 15);
      tc.dynamics.churn_mode = i % 3;
      tc.dynamics.churn_spare = tc.source;
    }
    if (i % 4 == 2 || i % 4 == 3) {
      tc.dynamics.adv_slow = 1024 + 128u * static_cast<std::uint64_t>(i % 40);
      tc.dynamics.adv_source = tc.source;
    }
    if (!case_valid(tc)) continue;  // e.g. churn on a 2-node graph edge case
    run_or_dump(tc);
  }
}

}  // namespace
}  // namespace latgossip
