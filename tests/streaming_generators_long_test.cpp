// Million-node smoke for the streaming CSR path (built only when
// LATGOSSIP_LONG_TESTS is ON; run via `ctest -L long`). The quick suite
// proves the algebra on small graphs; this leg proves the streaming
// generators actually deliver ROADMAP item 2's scale — 10^6 nodes built
// and validated without an intermediate edge list.

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace latgossip {
namespace {

constexpr std::size_t kMillion = 1'000'000;

TEST(StreamingMillionNode, Ring) {
  const auto g = make_ring_streaming(kMillion);
  EXPECT_EQ(g.num_nodes(), kMillion);
  EXPECT_EQ(g.num_edges(), kMillion);
  for (NodeId u = 0; u < kMillion; u += 99991) EXPECT_EQ(g.degree(u), 2u);
  EXPECT_TRUE(g.is_connected());
}

TEST(StreamingMillionNode, RandomRegular) {
  const auto g = make_random_regular_streaming(kMillion, 8, 0x106f);
  EXPECT_EQ(g.num_nodes(), kMillion);
  EXPECT_EQ(g.num_edges(), kMillion * 4);
  for (NodeId u = 0; u < kMillion; ++u)
    ASSERT_EQ(g.degree(u), 8u) << "node " << u;
  EXPECT_TRUE(g.is_connected());
}

TEST(StreamingMillionNode, ErdosRenyi) {
  // p = 16/n sits comfortably above the ln(n)/n connectivity threshold.
  const double p = 16.0 / static_cast<double>(kMillion);
  const auto g = make_erdos_renyi_streaming(kMillion, p, 0x106f);
  EXPECT_EQ(g.num_nodes(), kMillion);
  EXPECT_TRUE(g.is_connected());
  // Mean edges = p * n(n-1)/2 ~ 8e6; allow wide slack.
  EXPECT_GT(g.num_edges(), 7'500'000u);
  EXPECT_LT(g.num_edges(), 8'500'000u);
}

}  // namespace
}  // namespace latgossip
