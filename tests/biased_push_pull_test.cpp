// Tests for latency-biased push-pull (the spatial-gossip-style neighbor
// choice answering the paper's "more careful choice of neighbors"
// question).

#include <gtest/gtest.h>

#include "core/push_pull.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "util/stats.h"

namespace latgossip {
namespace {

SimResult run_biased(const WeightedGraph& g, double rho, std::uint64_t seed,
                     Round max_rounds = 1'000'000) {
  NetworkView view(g, true);
  BiasedPushPullBroadcast proto(view, 0, rho, Rng(seed));
  SimOptions opts;
  opts.max_rounds = max_rounds;
  return run_gossip(g, proto, opts);
}

TEST(BiasedPushPull, RhoZeroBehavesLikeUniform) {
  // With rho = 0 all neighbors are equally likely; completion times on a
  // clique should be statistically indistinguishable from uniform
  // push-pull (compare means over seeds).
  const auto g = make_clique(24);
  Accumulator biased, uniform;
  for (std::uint64_t s = 1; s <= 20; ++s) {
    biased.add(static_cast<double>(run_biased(g, 0.0, s).rounds));
    NetworkView view(g, false);
    PushPullBroadcast pp(view, 0, Rng(s));
    SimOptions opts;
    opts.max_rounds = 1'000'000;
    uniform.add(static_cast<double>(run_gossip(g, pp, opts).rounds));
  }
  EXPECT_NEAR(biased.mean(), uniform.mean(), 3.0);
}

TEST(BiasedPushPull, CompletesOnWeightedGraphs) {
  Rng gen(3);
  auto g = make_erdos_renyi(30, 0.25, gen);
  assign_two_level_latency(g, 1, 50, 0.5, gen);
  const SimResult r = run_biased(g, 2.0, 7);
  EXPECT_TRUE(r.completed);
}

TEST(BiasedPushPull, BiasAvoidsSlowEdges) {
  // Clique where most edges are slow: biased selection (rho = 2)
  // strongly prefers the fast subgraph and should beat uniform
  // push-pull on average.
  auto g = make_clique(32);
  Rng gen(5);
  assign_two_level_latency(g, 1, 100, 0.4, gen);
  Accumulator uniform, biased;
  for (std::uint64_t s = 1; s <= 15; ++s) {
    biased.add(static_cast<double>(run_biased(g, 2.0, s * 7).rounds));
    NetworkView view(g, false);
    PushPullBroadcast pp(view, 0, Rng(s * 7));
    SimOptions opts;
    opts.max_rounds = 1'000'000;
    uniform.add(static_cast<double>(run_gossip(g, pp, opts).rounds));
  }
  EXPECT_LT(biased.mean(), uniform.mean());
}

TEST(BiasedPushPull, ExtremeBiasStillCorrectWhenFastGraphDisconnected) {
  // Path whose middle edge is slow: even with heavy bias the protocol
  // must eventually cross it (bias never zeroes a probability).
  const auto g = build_graph(4, {{0, 1, 1}, {1, 2, 40}, {2, 3, 1}});
  const SimResult r = run_biased(g, 3.0, 11);
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.rounds, 40);
}

TEST(BiasedPushPull, ValidatesInput) {
  const auto g = make_path(3);
  NetworkView known(g, true);
  NetworkView unknown(g, false);
  EXPECT_THROW(BiasedPushPullBroadcast(known, 9, 1.0, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(BiasedPushPullBroadcast(known, 0, -1.0, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(BiasedPushPullBroadcast(unknown, 0, 1.0, Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace latgossip
