// Tests for the application layer: LWW key-value store, anti-entropy
// replication, and gossip aggregation.

#include <gtest/gtest.h>

#include "app/aggregate.h"
#include "app/anti_entropy.h"
#include "app/kv_store.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "sim/faults.h"

namespace latgossip {
namespace {

// ------------------------------------------------------------ KvStore

TEST(KvStore, LocalPutBumpsVersion) {
  KvStore s(3);
  s.put("k", "v1");
  s.put("k", "v2");
  const KvEntry* e = s.get("k");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, "v2");
  EXPECT_EQ(e->version, 2u);
  EXPECT_EQ(e->writer, 3u);
}

TEST(KvStore, LwwMergeHigherVersionWins) {
  KvStore a(0), b(1);
  a.put("k", "old");
  b.put("k", "mid");
  b.put("k", "new");  // version 2
  a.merge(b.snapshot());
  EXPECT_EQ(a.get("k")->value, "new");
  // Older state cannot regress the winner.
  KvStore stale(2);
  stale.put("k", "stale");  // version 1
  a.merge(stale.snapshot());
  EXPECT_EQ(a.get("k")->value, "new");
}

TEST(KvStore, TieBrokenByWriterId) {
  KvStore a(0), b(5);
  a.put("k", "from0");  // (1, 0)
  b.put("k", "from5");  // (1, 5) — dominates on writer id
  KvStore observer(9);
  observer.merge(a.snapshot());
  observer.merge(b.snapshot());
  EXPECT_EQ(observer.get("k")->value, "from5");
  // Merge order must not matter.
  KvStore observer2(9);
  observer2.merge(b.snapshot());
  observer2.merge(a.snapshot());
  EXPECT_EQ(observer2.digest(), observer.digest());
}

TEST(KvStore, DigestDetectsDifferencesAndConvergence) {
  KvStore a(0), b(1);
  a.put("x", "1");
  EXPECT_NE(a.digest(), b.digest());
  b.merge(a.snapshot());
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(KvStore, MergeIsIdempotent) {
  KvStore a(0);
  a.put("x", "1");
  const std::uint64_t before = a.digest();
  a.merge(a.snapshot());
  EXPECT_EQ(a.digest(), before);
}

TEST(KvStore, SnapshotBits) {
  KvStore a(0);
  a.put("key", "value");  // 3 + 5 bytes payload + 96 bits metadata
  EXPECT_EQ(KvStore::snapshot_bits(a.snapshot()), 8u * 8u + 96u);
}

// -------------------------------------------------------- AntiEntropy

std::vector<KvStore> seeded_stores(std::size_t n) {
  std::vector<KvStore> stores;
  for (NodeId v = 0; v < n; ++v) {
    KvStore s(v);
    s.put("key-" + std::to_string(v), "payload-" + std::to_string(v));
    stores.push_back(std::move(s));
  }
  return stores;
}

TEST(AntiEntropy, ConvergesOnClique) {
  const auto g = make_clique(12);
  NetworkView view(g, false);
  AntiEntropy proto(view, seeded_stores(12), Rng(1));
  SimOptions opts;
  opts.max_rounds = 100'000;
  const SimResult r = run_gossip(g, proto, opts);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(proto.converged());
  // Every replica holds all 12 keys.
  for (const KvStore& s : proto.stores()) EXPECT_EQ(s.size(), 12u);
}

TEST(AntiEntropy, ConvergesOnWeightedBottleneck) {
  const auto g = make_dumbbell(5, 1, 15);
  NetworkView view(g, false);
  AntiEntropy proto(view, seeded_stores(g.num_nodes()), Rng(3));
  SimOptions opts;
  opts.max_rounds = 200'000;
  const SimResult r = run_gossip(g, proto, opts);
  ASSERT_TRUE(r.completed);
  // Convergence cannot beat the bridge latency.
  EXPECT_GE(r.rounds, 15);
}

TEST(AntiEntropy, ConflictingWritesResolveIdentically) {
  const auto g = make_cycle(8);
  auto stores = seeded_stores(8);
  // Everyone writes the same key concurrently.
  for (NodeId v = 0; v < 8; ++v)
    stores[v].put("shared", "writer-" + std::to_string(v));
  NetworkView view(g, false);
  AntiEntropy proto(view, std::move(stores), Rng(5));
  SimOptions opts;
  opts.max_rounds = 100'000;
  ASSERT_TRUE(run_gossip(g, proto, opts).completed);
  // LWW: version 2 everywhere, highest writer id wins the tie.
  for (const KvStore& s : proto.stores())
    EXPECT_EQ(s.get("shared")->value, "writer-7");
}

TEST(AntiEntropy, SurvivesLinkLoss) {
  const auto g = make_clique(10);
  NetworkView view(g, false);
  AntiEntropy proto(view, seeded_stores(10), Rng(7));
  FaultPlan plan(10, 9);
  plan.set_link_drop_probability(0.25);
  SimOptions opts;
  plan.apply(opts);
  opts.max_rounds = 200'000;
  EXPECT_TRUE(run_gossip(g, proto, opts).completed);
}

TEST(AntiEntropy, AccountsPayloadBits) {
  const auto g = make_clique(6);
  NetworkView view(g, false);
  AntiEntropy proto(view, seeded_stores(6), Rng(11));
  SimOptions opts;
  opts.max_rounds = 100'000;
  const SimResult r = run_gossip(g, proto, opts);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.payload_bits, 0u);
}

TEST(AntiEntropy, ValidatesStoreCount) {
  const auto g = make_path(3);
  NetworkView view(g, false);
  EXPECT_THROW(AntiEntropy(view, seeded_stores(2), Rng(1)),
               std::invalid_argument);
}

// -------------------------------------------------------- aggregation

TEST(MinAggregation, ConvergesToGlobalMin) {
  const auto g = make_grid(4, 4);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 16; ++i) values.push_back(100 - 3 * i);
  NetworkView view(g, false);
  MinAggregation proto(view, values, Rng(13));
  SimOptions opts;
  opts.max_rounds = 100'000;
  const SimResult r = run_gossip(g, proto, opts);
  ASSERT_TRUE(r.completed);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(proto.current(v), 100 - 45);
}

TEST(MinAggregation, HandlesDuplicatesAndNegatives) {
  const auto g = make_cycle(6);
  NetworkView view(g, false);
  MinAggregation proto(view, {-5, 0, -5, 3, 7, -5}, Rng(17));
  SimOptions opts;
  opts.max_rounds = 100'000;
  ASSERT_TRUE(run_gossip(g, proto, opts).completed);
  EXPECT_EQ(proto.global_min(), -5);
}

TEST(LeaderElection, ElectsMinimumId) {
  Rng gen(19);
  auto g = make_erdos_renyi(20, 0.3, gen);
  assign_random_uniform_latency(g, 1, 4, gen);
  const LeaderElectionResult r = elect_min_leader(g, Rng(23));
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.leader, 0u);
  EXPECT_GT(r.rounds, 0);
}

TEST(MinAggregation, ValidatesInput) {
  const auto g = make_path(3);
  NetworkView view(g, false);
  EXPECT_THROW(MinAggregation(view, {1, 2}, Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace latgossip
