// Property-based / parameterized sweeps (gtest TEST_P): algorithm
// invariants checked across a grid of (graph family, latency model,
// seed) combinations.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/conductance.h"
#include "analysis/distance.h"
#include "analysis/spanner_check.h"
#include "core/dtg.h"
#include "core/eid.h"
#include "core/flooding.h"
#include "core/push_pull.h"
#include "core/rr_broadcast.h"
#include "core/spanner.h"
#include "core/tk_schedule.h"
#include "sim/faults.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"

namespace latgossip {
namespace {

enum class Family { kClique, kCycle, kGrid, kErdosRenyi, kRingOfCliques,
                    kStar, kBinaryTree, kBarabasiAlbert, kPathOfCliques,
                    kKaryTree };
enum class LatModel { kUnit, kUniformRandom, kTwoLevel };

std::string family_name(Family f) {
  switch (f) {
    case Family::kClique: return "clique";
    case Family::kCycle: return "cycle";
    case Family::kGrid: return "grid";
    case Family::kErdosRenyi: return "er";
    case Family::kRingOfCliques: return "ringcliques";
    case Family::kStar: return "star";
    case Family::kBinaryTree: return "btree";
    case Family::kBarabasiAlbert: return "ba";
    case Family::kPathOfCliques: return "pathcliques";
    case Family::kKaryTree: return "karytree";
  }
  return "?";
}

std::string model_name(LatModel m) {
  switch (m) {
    case LatModel::kUnit: return "unit";
    case LatModel::kUniformRandom: return "uniform";
    case LatModel::kTwoLevel: return "twolevel";
  }
  return "?";
}

WeightedGraph build(Family f, LatModel m, std::uint64_t seed) {
  Rng rng(seed);
  WeightedGraph g = [&]() {
    switch (f) {
      case Family::kClique: return make_clique(14);
      case Family::kCycle: return make_cycle(14);
      case Family::kGrid: return make_grid(4, 4);
      case Family::kErdosRenyi: return make_erdos_renyi(14, 0.35, rng);
      case Family::kRingOfCliques: return make_ring_of_cliques(3, 4);
      case Family::kStar: return make_star(14);
      case Family::kBinaryTree: return make_binary_tree(15);
      case Family::kBarabasiAlbert: return make_barabasi_albert(14, 2, rng);
      case Family::kPathOfCliques: return make_path_of_cliques(3, 5);
      case Family::kKaryTree: return make_kary_tree(13, 3);
    }
    return make_path(2);
  }();
  switch (m) {
    case LatModel::kUnit:
      break;
    case LatModel::kUniformRandom:
      assign_random_uniform_latency(g, 1, 6, rng);
      break;
    case LatModel::kTwoLevel:
      assign_two_level_latency(g, 1, 8, 0.4, rng);
      break;
  }
  return g;
}

using SweepParam = std::tuple<Family, LatModel, std::uint64_t>;

class DisseminationSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DisseminationSweep, PushPullReachesEveryone) {
  const auto [family, model, seed] = GetParam();
  const auto g = build(family, model, seed);
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(seed * 31 + 7));
  SimOptions opts;
  opts.max_rounds = 1'000'000;
  const SimResult r = run_gossip(g, proto, opts);
  ASSERT_TRUE(r.completed);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_TRUE(proto.informed(v));
}

TEST_P(DisseminationSweep, FloodingAllToAllCompletes) {
  const auto [family, model, seed] = GetParam();
  const auto g = build(family, model, seed);
  NetworkView view(g, false);
  RoundRobinFlooding proto(view, GossipGoal::kAllToAll, 0,
                           own_id_rumors(g.num_nodes()));
  SimOptions opts;
  opts.max_rounds = 1'000'000;
  ASSERT_TRUE(run_gossip(g, proto, opts).completed);
  EXPECT_TRUE(all_sets_full(proto.rumors()));
}

TEST_P(DisseminationSweep, DtgAchievesLocalBroadcast) {
  const auto [family, model, seed] = GetParam();
  const auto g = build(family, model, seed);
  const Latency ell = g.max_latency();
  NetworkView view(g, true);
  DtgLocalBroadcast proto(view, ell,
                          DtgLocalBroadcast::own_id_rumors(g.num_nodes()));
  SimOptions opts;
  opts.stop_when_idle = false;
  opts.max_rounds = 1'000'000;
  ASSERT_TRUE(run_gossip(g, proto, opts).completed);
  EXPECT_TRUE(local_broadcast_complete(g, proto.rumors()));
}

TEST_P(DisseminationSweep, GeneralEidTerminatesCorrectly) {
  const auto [family, model, seed] = GetParam();
  const auto g = build(family, model, seed);
  Rng rng(seed * 17 + 3);
  const GeneralEidOutcome out = run_general_eid(g, 0, rng);
  ASSERT_TRUE(out.success);
  // Lemma 18 part 1: termination only with complete exchange.
  EXPECT_TRUE(all_sets_full(out.rumors));
  // Lemma 18 part 2: every check verdict was unanimous.
  EXPECT_TRUE(out.checks_unanimous);
}

TEST_P(DisseminationSweep, TkScheduleAtDiameterSolvesAllToAll) {
  const auto [family, model, seed] = GetParam();
  const auto g = build(family, model, seed);
  const Latency d = weighted_diameter(g);
  const TkOutcome out = run_tk_schedule(g, d, own_id_rumors(g.num_nodes()));
  EXPECT_TRUE(out.all_to_all);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DisseminationSweep,
    ::testing::Combine(::testing::Values(Family::kClique, Family::kCycle,
                                         Family::kGrid, Family::kErdosRenyi,
                                         Family::kRingOfCliques,
                                         Family::kStar, Family::kBinaryTree,
                                         Family::kBarabasiAlbert,
                                         Family::kPathOfCliques,
                                         Family::kKaryTree),
                       ::testing::Values(LatModel::kUnit,
                                         LatModel::kUniformRandom,
                                         LatModel::kTwoLevel),
                       ::testing::Values(1u, 2u)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return family_name(std::get<0>(info.param)) + "_" +
             model_name(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ------------------------------------------------------ conductance laws

class ConductanceSweep
    : public ::testing::TestWithParam<std::tuple<Family, std::uint64_t>> {};

TEST_P(ConductanceSweep, UnitLatencyPhiStarEqualsClassical) {
  const auto [family, seed] = GetParam();
  const auto g = build(family, LatModel::kUnit, seed);
  const auto wc = weighted_conductance_exact(g);
  EXPECT_EQ(wc.ell_star, 1);
  EXPECT_DOUBLE_EQ(wc.phi_star, conductance_exact(g).phi);
}

TEST_P(ConductanceSweep, PhiEllMonotoneNondecreasing) {
  const auto [family, seed] = GetParam();
  const auto g = build(family, LatModel::kUniformRandom, seed);
  const auto wc = weighted_conductance_exact(g);
  for (std::size_t i = 1; i < wc.phi.size(); ++i)
    EXPECT_GE(wc.phi[i], wc.phi[i - 1]);
}

TEST_P(ConductanceSweep, PhiStarRatioDominatesAllLevels) {
  const auto [family, seed] = GetParam();
  const auto g = build(family, LatModel::kTwoLevel, seed);
  const auto wc = weighted_conductance_exact(g);
  const double star_ratio =
      wc.phi_star / static_cast<double>(wc.ell_star);
  for (std::size_t i = 0; i < wc.levels.size(); ++i)
    EXPECT_GE(star_ratio + 1e-12,
              wc.phi[i] / static_cast<double>(wc.levels[i]));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConductanceSweep,
    ::testing::Combine(::testing::Values(Family::kClique, Family::kCycle,
                                         Family::kGrid, Family::kErdosRenyi,
                                         Family::kStar),
                       ::testing::Values(3u, 4u)),
    [](const ::testing::TestParamInfo<std::tuple<Family, std::uint64_t>>&
           info) {
      return family_name(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------------------- spanner laws

class SpannerSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(SpannerSweep, StretchBoundedByTwoKMinusOne) {
  const auto [k, seed] = GetParam();
  Rng gen(seed);
  auto g = make_erdos_renyi(30, 0.25, gen);
  assign_random_uniform_latency(g, 1, 12, gen);
  Rng rng(seed * 13 + 1);
  const auto spanner = build_baswana_sen_spanner(g, {k, 0}, rng);
  const auto stats = check_spanner_exact(g, spanner);
  EXPECT_TRUE(stats.connected);
  EXPECT_LE(stats.max_stretch, static_cast<double>(2 * k - 1) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpannerSweep,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{3}, std::size_t{4}),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, std::uint64_t>>&
           info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// -------------------------------------------------- RR broadcast (L15)

class RrSweep : public ::testing::TestWithParam<std::tuple<Latency,
                                                           std::uint64_t>> {};

TEST_P(RrSweep, DistanceKPairsAlwaysExchange) {
  const auto [k, seed] = GetParam();
  Rng gen(seed);
  auto g = make_erdos_renyi(16, 0.3, gen);
  assign_random_uniform_latency(g, 1, 5, gen);
  DirectedGraph overlay(g.num_nodes());
  for (const Edge& e : g.edges()) {
    overlay.add_arc(e.u, e.v, e.latency);
    overlay.add_arc(e.v, e.u, e.latency);
  }
  NetworkView view(g, true);
  RRBroadcast proto(view, overlay, k, own_id_rumors(g.num_nodes()));
  SimOptions opts;
  opts.max_rounds = proto.budget() + k + 4;
  run_gossip(g, proto, opts);
  const auto& rumors = proto.rumors();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto dist = dijkstra(g, u);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      if (dist[v] != kUnreachable && dist[v] <= k) {
        EXPECT_TRUE(rumors[u].test(v));
        EXPECT_TRUE(rumors[v].test(u));
      }
  }
}

// ------------------------------------------------- robustness sweeps

class FaultSweep
    : public ::testing::TestWithParam<std::tuple<Family, int, std::uint64_t>> {
};

TEST_P(FaultSweep, PushPullCompletesUnderLinkLoss) {
  const auto [family, drop_pct, seed] = GetParam();
  const auto g = build(family, LatModel::kTwoLevel, seed);
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(seed * 101 + 1));
  FaultPlan plan(g.num_nodes(), seed * 103 + 5);
  plan.set_link_drop_probability(drop_pct / 100.0);
  SimOptions opts;
  plan.apply(opts);
  opts.max_rounds = 2'000'000;
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_TRUE(r.completed);
}

TEST_P(FaultSweep, FloodingCompletesUnderLinkLoss) {
  const auto [family, drop_pct, seed] = GetParam();
  const auto g = build(family, LatModel::kUnit, seed);
  NetworkView view(g, false);
  RoundRobinFlooding proto(view, GossipGoal::kAllToAll, 0,
                           own_id_rumors(g.num_nodes()));
  FaultPlan plan(g.num_nodes(), seed * 107 + 9);
  plan.set_link_drop_probability(drop_pct / 100.0);
  SimOptions opts;
  plan.apply(opts);
  opts.max_rounds = 2'000'000;
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(all_sets_full(proto.rumors()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FaultSweep,
    ::testing::Combine(::testing::Values(Family::kClique, Family::kGrid,
                                         Family::kErdosRenyi,
                                         Family::kBarabasiAlbert),
                       ::testing::Values(10, 30),
                       ::testing::Values(1u, 2u)),
    [](const ::testing::TestParamInfo<std::tuple<Family, int, std::uint64_t>>&
           info) {
      return family_name(std::get<0>(info.param)) + "_drop" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

class BlockingSweep
    : public ::testing::TestWithParam<std::tuple<Family, std::uint64_t>> {};

TEST_P(BlockingSweep, PushPullCompletesInBlockingModel) {
  const auto [family, seed] = GetParam();
  const auto g = build(family, LatModel::kUniformRandom, seed);
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(seed * 109 + 3));
  SimOptions opts;
  opts.blocking = true;
  opts.max_rounds = 2'000'000;
  EXPECT_TRUE(run_gossip(g, proto, opts).completed);
}

TEST_P(BlockingSweep, TkScheduleCorrectInBlockingModel) {
  // Appendix E explicitly claims T(k) works with blocking communication.
  const auto [family, seed] = GetParam();
  const auto g = build(family, LatModel::kUniformRandom, seed);
  const Latency d = weighted_diameter(g);
  // Re-run the schedule under blocking by driving DTG passes manually.
  auto rumors = own_id_rumors(g.num_nodes());
  NetworkView view(g, true);
  for (Latency ell : tk_pattern(next_power_of_two(d))) {
    DtgLocalBroadcast dtg(view, ell, std::move(rumors));
    SimOptions opts;
    opts.blocking = true;
    opts.stop_when_idle = false;
    opts.max_rounds = 2'000'000;
    ASSERT_TRUE(run_gossip(g, dtg, opts).completed);
    rumors = dtg.take_rumors();
  }
  EXPECT_TRUE(all_sets_full(rumors));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockingSweep,
    ::testing::Combine(::testing::Values(Family::kClique, Family::kCycle,
                                         Family::kGrid,
                                         Family::kPathOfCliques),
                       ::testing::Values(3u, 4u)),
    [](const ::testing::TestParamInfo<std::tuple<Family, std::uint64_t>>&
           info) {
      return family_name(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(
    Sweep, RrSweep,
    ::testing::Combine(::testing::Values(Latency{2}, Latency{5}, Latency{9}),
                       ::testing::Values(5u, 6u)),
    [](const ::testing::TestParamInfo<std::tuple<Latency, std::uint64_t>>&
           info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace latgossip
