// Tests for EID (Theorem 14 / Lemma 17) and General EID (Theorem 19),
// including the Lemma 18 termination-check properties.

#include <gtest/gtest.h>

#include "analysis/distance.h"
#include "core/eid.h"
#include "core/rr_broadcast.h"
#include "core/termination.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/latency_models.h"

namespace latgossip {
namespace {

TEST(Eid, AllToAllOnUnitClique) {
  const auto g = make_clique(12);
  Rng rng(1);
  EidOptions opts;
  opts.diameter_estimate = weighted_diameter(g);
  const EidOutcome out = run_eid(g, opts, own_id_rumors(12), rng);
  EXPECT_TRUE(out.all_to_all);
  EXPECT_GT(out.sim.rounds, 0);
}

TEST(Eid, AllToAllOnWeightedGrid) {
  auto g = make_grid(4, 4);
  Rng latr(2);
  assign_random_uniform_latency(g, 1, 5, latr);
  Rng rng(3);
  EidOptions opts;
  opts.diameter_estimate = weighted_diameter(g);
  const EidOutcome out = run_eid(g, opts, own_id_rumors(16), rng);
  EXPECT_TRUE(out.all_to_all);
}

TEST(Eid, UnderestimatedDiameterFailsGracefully) {
  // Path with heavy middle edge: estimate 1 cannot reach across.
  const auto g = build_graph(4, {{0, 1, 1}, {1, 2, 20}, {2, 3, 1}});
  Rng rng(5);
  EidOptions opts;
  opts.diameter_estimate = 1;
  const EidOutcome out = run_eid(g, opts, own_id_rumors(4), rng);
  EXPECT_FALSE(out.all_to_all);
  EXPECT_TRUE(out.rumors[0].test(1));
  EXPECT_FALSE(out.rumors[0].test(3));
}

TEST(Eid, SpannerRespectsDiameterCap) {
  auto g = make_clique(10);
  Rng latr(7);
  assign_two_level_latency(g, 1, 40, 0.6, latr);
  Rng rng(9);
  EidOptions opts;
  opts.diameter_estimate = 5;
  const EidOutcome out = run_eid(g, opts, own_id_rumors(10), rng);
  for (NodeId u = 0; u < out.spanner.num_nodes(); ++u)
    for (const Arc& a : out.spanner.out_arcs(u)) EXPECT_LE(a.latency, 5);
}

TEST(Eid, ValidatesInput) {
  const auto g = make_path(3);
  Rng rng(1);
  EidOptions bad;
  bad.diameter_estimate = 0;
  EXPECT_THROW(run_eid(g, bad, own_id_rumors(3), rng),
               std::invalid_argument);
  EidOptions ok;
  ok.diameter_estimate = 2;
  EXPECT_THROW(run_eid(g, ok, own_id_rumors(2), rng),
               std::invalid_argument);
}

TEST(GeneralEid, ConvergesOnUnitPath) {
  const auto g = make_path(8);
  Rng rng(11);
  const GeneralEidOutcome out = run_general_eid(g, 0, rng);
  EXPECT_TRUE(out.success);
  EXPECT_TRUE(all_sets_full(out.rumors));
  EXPECT_TRUE(out.checks_unanimous);
  // DTG relays transitively within a session, so on a unit graph even a
  // small estimate can complete; the estimate never overshoots 2D.
  EXPECT_LE(out.final_estimate, 16);
}

TEST(GeneralEid, HeavyBridgeForcesDoubling) {
  // No rumor can cross a latency-20 bridge while the estimate k < 20 —
  // every algorithm phase ignores edges slower than k — so the doubling
  // must reach at least 32.
  const auto g = build_graph(4, {{0, 1, 1}, {1, 2, 20}, {2, 3, 1}});
  Rng rng(12);
  const GeneralEidOutcome out = run_general_eid(g, 0, rng);
  ASSERT_TRUE(out.success);
  EXPECT_TRUE(all_sets_full(out.rumors));
  EXPECT_GE(out.final_estimate, 20);
  EXPECT_GE(out.attempts, 6u);  // k = 1,2,4,8,16,32
}

TEST(GeneralEid, ConvergesOnWeightedRingOfCliques) {
  const auto g = make_ring_of_cliques(4, 4, 6);
  Rng rng(13);
  const GeneralEidOutcome out = run_general_eid(g, 0, rng);
  EXPECT_TRUE(out.success);
  EXPECT_TRUE(all_sets_full(out.rumors));
  EXPECT_TRUE(out.checks_unanimous);
  EXPECT_GT(out.attempts, 1u);  // must have doubled at least once
}

TEST(GeneralEid, Lemma18NoEarlyTermination) {
  // Success implies every node exchanged rumors with every other node.
  Rng gen(17);
  auto g = make_erdos_renyi(14, 0.3, gen);
  assign_random_uniform_latency(g, 1, 8, gen);
  Rng rng(19);
  const GeneralEidOutcome out = run_general_eid(g, 0, rng);
  ASSERT_TRUE(out.success);
  EXPECT_TRUE(all_sets_full(out.rumors));  // part 1 of Lemma 18
  EXPECT_TRUE(out.checks_unanimous);       // part 2 of Lemma 18
}

TEST(GeneralEid, SingleNodeTrivial) {
  const WeightedGraph g(1);
  Rng rng(23);
  const GeneralEidOutcome out = run_general_eid(g, 0, rng);
  EXPECT_TRUE(out.success);
}

TEST(TerminationCheck, PassesWhenSetsCompleteAndEqual) {
  const auto g = make_clique(5);
  std::vector<Bitset> rumors(5, Bitset(5));
  for (auto& b : rumors) b.set_all();
  auto broadcast = [&]() {
    // Perfect broadcast primitive: everyone hears everyone.
    std::vector<Bitset> heard(5, Bitset(5));
    for (auto& b : heard) b.set_all();
    return std::make_pair(heard, SimResult{});
  };
  const CheckOutcome out = run_termination_check(g, rumors, broadcast);
  EXPECT_FALSE(out.failed);
  EXPECT_TRUE(out.unanimous);
}

TEST(TerminationCheck, FailsOnMissingNeighbor) {
  const auto g = make_path(3);
  auto rumors = own_id_rumors(3);  // nobody heard anyone: flags everywhere
  auto broadcast = [&]() {
    std::vector<Bitset> heard(3, Bitset(3));
    for (auto& b : heard) b.set_all();
    return std::make_pair(heard, SimResult{});
  };
  const CheckOutcome out = run_termination_check(g, rumors, broadcast);
  EXPECT_TRUE(out.failed);
  EXPECT_TRUE(out.unanimous);
}

TEST(TerminationCheck, FailsOnRumorSetMismatch) {
  const auto g = make_clique(4);
  std::vector<Bitset> rumors(4, Bitset(4));
  for (auto& b : rumors) b.set_all();
  rumors[2].reset(3);  // node 2 disagrees (and lacks neighbor 3)
  auto broadcast = [&]() {
    std::vector<Bitset> heard(4, Bitset(4));
    for (auto& b : heard) b.set_all();
    return std::make_pair(heard, SimResult{});
  };
  const CheckOutcome out = run_termination_check(g, rumors, broadcast);
  EXPECT_TRUE(out.failed);
  EXPECT_TRUE(out.unanimous);
}

TEST(TerminationCheck, DetectsDisagreementWithPartialReachability) {
  // Two cliques with a slow bridge: the broadcast primitive only covers
  // each side. Both sides see a flagged node (the bridge endpoints miss
  // their cross-bridge neighbor), so both fail — unanimity holds exactly
  // as argued for Lemma 18.
  const auto g = make_dumbbell(3, 1, 50);
  const std::size_t n = g.num_nodes();
  auto rumors = own_id_rumors(n);
  // Each side heard its own clique only.
  for (NodeId v = 0; v < n; ++v)
    for (NodeId u = 0; u < n; ++u)
      if ((v < 3) == (u < 3)) rumors[v].set(u);
  auto broadcast = [&]() {
    std::vector<Bitset> heard = rumors;
    return std::make_pair(heard, SimResult{});
  };
  const CheckOutcome out = run_termination_check(g, rumors, broadcast);
  EXPECT_TRUE(out.failed);
  EXPECT_TRUE(out.unanimous);
}

}  // namespace
}  // namespace latgossip
