// Tests for the guessing game Guessing(2m, P) and Alice strategies
// (Section 3.1, Lemmas 4-5).

#include <gtest/gtest.h>

#include <set>

#include "game/game.h"
#include "game/strategies.h"

namespace latgossip {
namespace {

TEST(Game, EmptyTargetIsSolvedImmediately) {
  GuessingGame game(4, {});
  EXPECT_TRUE(game.solved());
  EXPECT_EQ(game.initial_target_size(), 0u);
  EXPECT_THROW(game.submit_round({{0, 0}}), std::logic_error);
}

TEST(Game, HitRevealedAndBColumnCleared) {
  // Target {(0,1), (2,1), (3,3)}: hitting (0,1) must clear (2,1) too.
  GuessingGame game(4, {{0, 1}, {2, 1}, {3, 3}});
  EXPECT_EQ(game.target_remaining(), 3u);
  const auto hits = game.submit_round({{0, 1}});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], (GuessPair{0, 1}));
  EXPECT_EQ(game.target_remaining(), 1u);  // only (3,3) survives
  EXPECT_FALSE(game.solved());
  const auto hits2 = game.submit_round({{3, 3}});
  EXPECT_EQ(hits2.size(), 1u);
  EXPECT_TRUE(game.solved());
  EXPECT_EQ(game.rounds_played(), 2u);
}

TEST(Game, MissesRevealNothing) {
  GuessingGame game(4, {{1, 1}});
  const auto hits = game.submit_round({{0, 0}, {2, 2}});
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(game.target_remaining(), 1u);
}

TEST(Game, RemovedPairsNoLongerHit) {
  // Both targets share b = 1; hitting one clears the whole column and
  // solves the game in a single round (update rule (2)).
  GuessingGame game(4, {{0, 1}, {2, 1}});
  const auto hits = game.submit_round({{0, 1}});
  EXPECT_EQ(hits.size(), 1u);
  EXPECT_TRUE(game.solved());
  // A third target in another column survives a same-column hit.
  GuessingGame game2(4, {{0, 1}, {2, 1}, {2, 2}});
  game2.submit_round({{0, 1}});
  EXPECT_EQ(game2.target_remaining(), 1u);
  // The removed pair no longer registers as a hit.
  const auto hits2 = game2.submit_round({{2, 1}});
  EXPECT_TRUE(hits2.empty());
  EXPECT_FALSE(game2.solved());
}

TEST(Game, GuessBudgetEnforced) {
  GuessingGame game(2, {{0, 0}});
  std::vector<GuessPair> too_many(5, {0, 1});
  EXPECT_THROW(game.submit_round(too_many), std::invalid_argument);
}

TEST(Game, ValidatesRanges) {
  EXPECT_THROW(GuessingGame(3, {{3, 0}}), std::invalid_argument);
  GuessingGame game(3, {{0, 0}});
  EXPECT_THROW(game.submit_round({{0, 3}}), std::invalid_argument);
}

TEST(Game, DuplicateTargetEntriesCollapse) {
  GuessingGame game(3, {{1, 1}, {1, 1}});
  EXPECT_EQ(game.initial_target_size(), 1u);
}

TEST(Strategies, SystematicSolvesSingletonWithinHalfM) {
  // Sweeping 2m guesses/round over m^2 pairs finds any singleton in at
  // most m/2 rounds.
  const std::size_t m = 32;
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    TargetSet t{{rng.uniform(m), rng.uniform(m)}};
    GuessingGame game(m, t);
    SystematicSweepStrategy strat(m);
    const PlayResult r = play_game(game, strat, 10 * m);
    EXPECT_TRUE(r.solved);
    EXPECT_LE(r.rounds, m / 2);
  }
}

TEST(Strategies, SingletonNeedsLinearRounds) {
  // Lemma 4 shape: rounds grow linearly in m for the uniform singleton.
  Rng rng(3);
  double small_mean = 0, large_mean = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    for (std::size_t m : {16u, 64u}) {
      TargetSet t{{rng.uniform(m), rng.uniform(m)}};
      GuessingGame game(m, t);
      AdaptiveCouponStrategy strat(m);
      const PlayResult r = play_game(game, strat, 10 * m);
      EXPECT_TRUE(r.solved);
      (m == 16 ? small_mean : large_mean) +=
          static_cast<double>(r.rounds) / trials;
    }
  }
  // Quadrupling m should roughly quadruple the rounds.
  EXPECT_GT(large_mean, 2.5 * small_mean);
}

TEST(Strategies, AdaptiveSolvesRandomP) {
  const std::size_t m = 48;
  Rng rng(5);
  GuessingGame game(m, make_random_p_target(m, 0.1, rng));
  AdaptiveCouponStrategy strat(m);
  const PlayResult r = play_game(game, strat, 50 * m);
  EXPECT_TRUE(r.solved);
}

TEST(Strategies, RandomPerSideSolvesRandomP) {
  const std::size_t m = 48;
  Rng rng(7);
  GuessingGame game(m, make_random_p_target(m, 0.2, rng));
  RandomPerSideStrategy strat(m, Rng(9));
  const PlayResult r = play_game(game, strat, 5000);
  EXPECT_TRUE(r.solved);
}

TEST(Strategies, RandomPerSideSlowerThanAdaptiveOnRandomP) {
  // Lemma 5: random guessing pays an extra log m factor over the
  // adaptive (fresh-pair) strategy. Compare means over several trials.
  const std::size_t m = 64;
  const double p = 0.08;
  double adaptive_mean = 0, random_mean = 0;
  const int trials = 15;
  for (int trial = 0; trial < trials; ++trial) {
    Rng target_rng(100 + trial);
    const TargetSet t = make_random_p_target(m, p, target_rng);
    {
      GuessingGame game(m, t);
      AdaptiveCouponStrategy strat(m);
      adaptive_mean +=
          static_cast<double>(play_game(game, strat, 100000).rounds) / trials;
    }
    {
      GuessingGame game(m, t);
      RandomPerSideStrategy strat(m, Rng(200 + trial));
      random_mean +=
          static_cast<double>(play_game(game, strat, 100000).rounds) / trials;
    }
  }
  EXPECT_GT(random_mean, 1.5 * adaptive_mean);
}

TEST(Strategies, RandomPerSideBudgetIs2m) {
  RandomPerSideStrategy strat(10, Rng(1));
  EXPECT_EQ(strat.next_guesses(0).size(), 20u);
}

TEST(Strategies, AdaptiveNeverRepeatsAGuess) {
  const std::size_t m = 12;
  AdaptiveCouponStrategy strat(m);
  std::set<GuessPair> seen;
  for (std::size_t round = 0; round < m; ++round) {
    for (const auto& gp : strat.next_guesses(round)) {
      EXPECT_TRUE(seen.insert(gp).second) << "repeated guess";
    }
    strat.observe({}, {});
  }
}

}  // namespace
}  // namespace latgossip
