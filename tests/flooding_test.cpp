// Tests for the round-robin flooding baseline.

#include <gtest/gtest.h>

#include "core/flooding.h"
#include "core/rr_broadcast.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"

namespace latgossip {
namespace {

SimResult run_flood(const WeightedGraph& g, GossipGoal goal,
                    Round max_rounds = 200'000) {
  NetworkView view(g, false);
  RoundRobinFlooding proto(view, goal, 0, own_id_rumors(g.num_nodes()));
  SimOptions opts;
  opts.max_rounds = max_rounds;
  return run_gossip(g, proto, opts);
}

TEST(Flooding, AllToAllOnPath) {
  const auto g = make_path(10);
  const SimResult r = run_flood(g, GossipGoal::kAllToAll);
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.rounds, 9);
}

TEST(Flooding, AllToAllOnWeightedCycle) {
  auto g = make_cycle(8);
  assign_uniform_latency(g, 5);
  const SimResult r = run_flood(g, GossipGoal::kAllToAll);
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.rounds, 4 * 5);  // half the cycle at latency 5
}

TEST(Flooding, DeterministicSchedule) {
  const auto g = make_clique(10);
  const SimResult a = run_flood(g, GossipGoal::kAllToAll);
  const SimResult b = run_flood(g, GossipGoal::kAllToAll);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.activations, b.activations);
}

TEST(Flooding, LocalBroadcastFasterOrEqualThanAllToAll) {
  Rng rng(3);
  auto g = make_erdos_renyi(16, 0.3, rng);
  const SimResult local = run_flood(g, GossipGoal::kLocalBroadcast);
  const SimResult all = run_flood(g, GossipGoal::kAllToAll);
  ASSERT_TRUE(local.completed);
  ASSERT_TRUE(all.completed);
  EXPECT_LE(local.rounds, all.rounds);
}

TEST(Flooding, StarSingleSourceFromLeaf) {
  // On a star, bidirectional exchanges save flooding from the Ω(nD)
  // push-only trap: the hub relays to each leaf round-robin.
  const auto g = make_star(12);
  NetworkView view(g, false);
  RoundRobinFlooding proto(view, GossipGoal::kSingleSource, 1,
                           own_id_rumors(12));
  SimOptions opts;
  opts.max_rounds = 10'000;
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_TRUE(r.completed);
  EXPECT_LE(r.rounds, 30);
}

TEST(Flooding, RumorSetsCompleteAtTermination) {
  const auto g = make_grid(4, 4);
  RoundRobinFlooding proto(NetworkView(g, false), GossipGoal::kAllToAll, 0,
                           own_id_rumors(16));
  SimOptions opts;
  opts.max_rounds = 100'000;
  const SimResult r = run_gossip(g, proto, opts);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(all_sets_full(proto.rumors()));
}

TEST(Flooding, ValidatesInput) {
  const auto g = make_path(3);
  NetworkView view(g, false);
  EXPECT_THROW(
      RoundRobinFlooding(view, GossipGoal::kAllToAll, 0, own_id_rumors(2)),
      std::invalid_argument);
}

}  // namespace
}  // namespace latgossip
