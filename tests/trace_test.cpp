// Tests for simulation tracing (sim/trace.h) and the umbrella header.

#include <gtest/gtest.h>

#include "latgossip.h"  // umbrella header must compile standalone

namespace latgossip {
namespace {

TEST(Trace, RecordsEveryActivation) {
  const auto g = make_path(4);
  NetworkView view(g, false);
  RoundRobinFlooding proto(view, GossipGoal::kAllToAll, 0, own_id_rumors(4));
  SimTrace trace;
  SimOptions opts;
  trace.attach(opts);
  opts.max_rounds = 10'000;
  const SimResult r = run_gossip(g, proto, opts);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(trace.size(), r.activations);
}

TEST(Trace, ChainsExistingObserver) {
  const auto g = make_path(3);
  NetworkView view(g, false);
  RoundRobinFlooding proto(view, GossipGoal::kAllToAll, 0, own_id_rumors(3));
  std::size_t external = 0;
  SimOptions opts;
  opts.on_activation = [&](NodeId, NodeId, EdgeId, Round) { ++external; };
  SimTrace trace;
  trace.attach(opts);
  opts.max_rounds = 10'000;
  run_gossip(g, proto, opts);
  EXPECT_EQ(external, trace.size());
  EXPECT_GT(external, 0u);
}

TEST(Trace, PerRoundAndPerEdgeCounts) {
  GraphBuilder b(3);
  const EdgeId e01 = b.add_edge(0, 1, 1);
  const EdgeId e12 = b.add_edge(1, 2, 1);
  const WeightedGraph g = b.build();

  struct TwoShots {
    using Payload = int;
    std::optional<NodeId> select_contact(NodeId u, Round r) {
      if (u == 0 && r == 0) return 1;
      if (u == 1 && r == 2) return 2;
      return std::nullopt;
    }
    Payload capture_payload(NodeId, Round) const { return 0; }
    void deliver(NodeId, NodeId, Payload, EdgeId, Round, Round) {}
    bool done(Round) const { return false; }
  } proto;

  SimTrace trace;
  SimOptions opts;
  trace.attach(opts);
  opts.max_rounds = 10;
  opts.stop_when_idle = false;  // round 1 is silent by design
  run_gossip(g, proto, opts);
  EXPECT_EQ(trace.activations_in_round(0), 1u);
  EXPECT_EQ(trace.activations_in_round(1), 0u);
  EXPECT_EQ(trace.activations_in_round(2), 1u);
  const auto counts = trace.per_edge_counts(g.num_edges());
  EXPECT_EQ(counts[e01], 1u);
  EXPECT_EQ(counts[e12], 1u);
}

TEST(Trace, CsvFormat) {
  SimTrace trace;
  const auto g = build_graph(2, {{0, 1, 1}});
  struct OneShot {
    using Payload = int;
    std::optional<NodeId> select_contact(NodeId u, Round r) {
      return (u == 0 && r == 0) ? std::optional<NodeId>(1) : std::nullopt;
    }
    Payload capture_payload(NodeId, Round) const { return 0; }
    void deliver(NodeId, NodeId, Payload, EdgeId, Round, Round) {}
    bool done(Round) const { return false; }
  } proto;
  SimOptions opts;
  trace.attach(opts);
  opts.max_rounds = 5;
  run_gossip(g, proto, opts);
  EXPECT_EQ(trace.to_csv(), "round,initiator,responder,edge\n0,0,1,0\n");
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

}  // namespace
}  // namespace latgossip
