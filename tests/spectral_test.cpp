// Tests for the spectral sweep-cut conductance approximation.

#include <gtest/gtest.h>

#include "analysis/conductance.h"
#include "analysis/spectral.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/latency_models.h"

namespace latgossip {
namespace {

TEST(Sweep, UpperBoundsExactValue) {
  Rng rng(3);
  for (int trial = 0; trial < 4; ++trial) {
    auto g = make_erdos_renyi(12, 0.35, rng);
    assign_random_uniform_latency(g, 1, 5, rng);
    for (Latency ell : {1, 3, 5}) {
      Rng sweep_rng(100 + trial);
      const double approx =
          weight_ell_conductance_sweep(g, ell, 200, sweep_rng).phi;
      const double exact = weight_ell_conductance_exact(g, ell).phi;
      EXPECT_GE(approx, exact - 1e-9);
    }
  }
}

TEST(Sweep, FindsObviousBottleneck) {
  // Dumbbell: the sweep embedding separates the two cliques, so the
  // sweep cut should recover the exact (bridge) conductance.
  const auto g = make_dumbbell(6, 1, 1);
  Rng rng(5);
  const double approx = weight_ell_conductance_sweep(g, 1, 400, rng).phi;
  const double exact = conductance_exact(g).phi;
  EXPECT_NEAR(approx, exact, 1e-9);
}

TEST(Sweep, CycleCloseToExact) {
  const auto g = make_cycle(16);
  Rng rng(7);
  const double approx = weight_ell_conductance_sweep(g, 1, 400, rng).phi;
  const double exact = conductance_exact(g, 24).phi;
  EXPECT_GE(approx, exact - 1e-9);
  EXPECT_LE(approx, exact * 2.5);  // Cheeger-style slack
}

TEST(Sweep, ZeroWhenNoFastEdgesCrossBottleneck) {
  // Two triangles, slow bridge: at ell = 1 the graph splits, φ_1 = 0.
  const auto g = make_dumbbell(3, 1, 9);
  Rng rng(9);
  EXPECT_DOUBLE_EQ(weight_ell_conductance_sweep(g, 1, 200, rng).phi, 0.0);
}

TEST(Sweep, ReturnsValidCut) {
  const auto g = make_dumbbell(4, 1, 1);
  Rng rng(11);
  const CutResult r = weight_ell_conductance_sweep(g, 1, 300, rng);
  ASSERT_EQ(r.argmin_cut.size(), g.num_nodes());
  EXPECT_DOUBLE_EQ(phi_ell_of_cut(g, r.argmin_cut, 1), r.phi);
}

TEST(Sweep, WeightedSelectionMonotoneAndBounded) {
  Rng rng(13);
  auto g = make_erdos_renyi(14, 0.3, rng);
  assign_two_level_latency(g, 1, 10, 0.5, rng);
  Rng sweep_rng(17);
  const auto wc = weighted_conductance_sweep(g, 200, sweep_rng);
  ASSERT_GE(wc.levels.size(), 1u);
  for (std::size_t i = 1; i < wc.phi.size(); ++i)
    EXPECT_GE(wc.phi[i], wc.phi[i - 1]);
  const auto exact = weighted_conductance_exact(g);
  // The sweep's phi* must upper bound some exact level ratio; weaker
  // but sufficient: sweep phi at max level >= exact phi at max level.
  EXPECT_GE(wc.phi.back(), exact.phi.back() - 1e-9);
}

TEST(Sweep, AutoDispatcherPicksExactOnSmallGraphs) {
  const auto g = make_dumbbell(3, 1, 5);
  Rng rng(19);
  bool exact = false;
  const auto wc = weighted_conductance_auto(g, 20, 100, rng, &exact);
  EXPECT_TRUE(exact);
  const auto reference = weighted_conductance_exact(g);
  EXPECT_DOUBLE_EQ(wc.phi_star, reference.phi_star);
  EXPECT_EQ(wc.ell_star, reference.ell_star);
}

TEST(Sweep, AutoDispatcherFallsBackToSweep) {
  Rng gen(23);
  auto g = make_erdos_renyi(40, 0.2, gen);
  Rng rng(29);
  bool exact = true;
  const auto wc = weighted_conductance_auto(g, 20, 150, rng, &exact);
  EXPECT_FALSE(exact);
  EXPECT_GT(wc.phi_star, 0.0);
}

TEST(Sweep, ValidatesInput) {
  const auto g = make_path(3);
  Rng rng(1);
  EXPECT_THROW(weight_ell_conductance_sweep(g, 1, 0, rng),
               std::invalid_argument);
  const auto isolated = build_graph(3, {{0, 1, 1}});
  EXPECT_THROW(weight_ell_conductance_sweep(isolated, 1, 10, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace latgossip
