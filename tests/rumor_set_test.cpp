// Unit tests for the rumor-set representation layer (util/rumor_set.h):
// SparseRumorSet and CountRumorSet must be observationally identical to
// the dense Bitset reference through every concept operation, including
// the exact OrDelta accounting the protocols' incremental cardinality
// counters depend on.

#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

#include "util/bitset.h"
#include "util/rng.h"
#include "util/rumor_set.h"
#include "util/snapshot.h"

namespace latgossip {
namespace {

template <typename R>
class RumorSetRepTest : public ::testing::Test {};

using AltReps = ::testing::Types<SparseRumorSet, CountRumorSet>;
TYPED_TEST_SUITE(RumorSetRepTest, AltReps);

TYPED_TEST(RumorSetRepTest, EmptyAndSingleton) {
  TypeParam r(10);
  EXPECT_EQ(r.size(), 10u);
  EXPECT_EQ(r.count(), 0u);
  EXPECT_FALSE(r.all());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_FALSE(r.test(i));
  r.set(3);
  EXPECT_TRUE(r.test(3));
  EXPECT_FALSE(r.test(4));
  EXPECT_EQ(r.count(), 1u);
  r.set(3);  // idempotent
  EXPECT_EQ(r.count(), 1u);
  EXPECT_THROW(r.test(10), std::out_of_range);
  EXPECT_THROW(r.set(10), std::out_of_range);
}

TYPED_TEST(RumorSetRepTest, ClearAndReinit) {
  TypeParam r(8);
  r.set(0);
  r.set(7);
  r.clear();
  EXPECT_EQ(r.count(), 0u);
  EXPECT_FALSE(r.test(0));
  r.reinit(4);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.count(), 0u);
  r.set(2);
  EXPECT_TRUE(r.test(2));
}

TYPED_TEST(RumorSetRepTest, OrDeltaAccounting) {
  TypeParam a(16), b(16);
  a.set(1);
  a.set(5);
  b.set(5);
  b.set(9);
  const auto d1 = a.or_assign_changed(b);
  EXPECT_TRUE(d1.changed);
  EXPECT_EQ(d1.added, 1u);
  EXPECT_EQ(a.count(), 3u);
  const auto d2 = a.or_assign_changed(b);  // subset: no change
  EXPECT_FALSE(d2.changed);
  EXPECT_EQ(d2.added, 0u);
  TypeParam c(8);
  EXPECT_THROW(a.or_assign_changed(c), std::invalid_argument);
}

TYPED_TEST(RumorSetRepTest, AssignAndCount) {
  TypeParam a(12), b(12);
  b.set(2);
  b.set(3);
  b.set(11);
  EXPECT_EQ(a.assign_and_count(b), 3u);
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a.test(11));
}

TYPED_TEST(RumorSetRepTest, EqualityIsMembershipBased) {
  TypeParam a(20), b(20);
  EXPECT_TRUE(a == b);
  a.set(4);
  EXPECT_FALSE(a == b);
  b.set(4);
  EXPECT_TRUE(a == b);
  TypeParam other_universe(21);
  EXPECT_FALSE(a == other_universe);
}

// Randomized differential against the dense reference: the same op
// sequence applied to TypeParam and Bitset must agree on membership,
// cardinality, and every OrDelta.
TYPED_TEST(RumorSetRepTest, RandomizedAgainstDenseReference) {
  constexpr std::size_t kN = 300;  // spans the sparse promote threshold
  Rng rng(0x5eed5e75ull);
  for (int trial = 0; trial < 20; ++trial) {
    TypeParam x(kN), y(kN);
    Bitset rx(kN), ry(kN);
    for (int op = 0; op < 400; ++op) {
      switch (rng.uniform(4)) {
        case 0: {
          const std::size_t i = rng.uniform(kN);
          x.set(i);
          rx.set(i);
          break;
        }
        case 1: {
          const std::size_t i = rng.uniform(kN);
          y.set(i);
          ry.set(i);
          break;
        }
        case 2: {
          const auto d = x.or_assign_changed(y);
          const auto rd = rx.or_assign_changed(ry);
          ASSERT_EQ(d.changed, rd.changed);
          ASSERT_EQ(d.added, rd.added);
          break;
        }
        case 3: {
          const std::size_t i = rng.uniform(kN);
          ASSERT_EQ(x.test(i), rx.test(i));
          break;
        }
      }
      ASSERT_EQ(x.count(), rx.count());
      ASSERT_EQ(y.count(), ry.count());
      ASSERT_EQ(x.all(), rx.all());
    }
    ASSERT_EQ(x.to_indices(), rx.to_indices());
    ASSERT_EQ(y.to_indices(), ry.to_indices());
  }
}

TYPED_TEST(RumorSetRepTest, FillToUniverse) {
  constexpr std::size_t kN = 130;
  TypeParam r(kN);
  for (std::size_t i = 0; i < kN; ++i) r.set(i);
  EXPECT_TRUE(r.all());
  EXPECT_EQ(r.count(), kN);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_TRUE(r.test(i));
  // Unions into a full set are no-ops with zero delta.
  TypeParam other(kN);
  other.set(5);
  const auto d = r.or_assign_changed(other);
  EXPECT_FALSE(d.changed);
  EXPECT_EQ(d.added, 0u);
}

TYPED_TEST(RumorSetRepTest, OwnIdRumorSets) {
  const auto sets = own_id_rumor_sets<TypeParam>(6);
  ASSERT_EQ(sets.size(), 6u);
  for (std::size_t u = 0; u < 6; ++u) {
    EXPECT_EQ(sets[u].count(), 1u);
    EXPECT_TRUE(sets[u].test(u));
  }
}

// --- representation-specific edges -----------------------------------------

TEST(SparseRumorSet, PromotesPastThreshold) {
  constexpr std::size_t kN = 10000;
  const std::size_t threshold = SparseRumorSet::promote_threshold(kN);
  SparseRumorSet s(kN);
  Bitset ref(kN);
  for (std::size_t i = 0; i < threshold; ++i) {
    s.set(i * 3 % kN);  // distinct while 3 * threshold < kN
    ref.set(i * 3 % kN);
  }
  EXPECT_TRUE(s.is_sparse());  // exactly at the threshold: still sparse
  s.set(9999);                 // one past it: promotes
  ref.set(9999);
  EXPECT_FALSE(s.is_sparse());
  EXPECT_EQ(s.count(), ref.count());
  EXPECT_EQ(s.to_indices(), ref.to_indices());
  // Dense instance keeps behaving correctly, and mixed-mode union and
  // equality (dense vs sparse operand) agree with the reference.
  SparseRumorSet t(kN);
  t.set(1);
  t.set(9998);
  Bitset tref(kN);
  tref.set(1);
  tref.set(9998);
  const auto d = s.or_assign_changed(t);
  const auto rd = ref.or_assign_changed(tref);
  EXPECT_EQ(d.added, rd.added);
  EXPECT_EQ(s.count(), ref.count());
  EXPECT_TRUE(s == s);
  s.reinit(kN);
  EXPECT_TRUE(s.is_sparse());  // reinit drops back to sparse mode
}

TEST(SparseRumorSet, SparseAbsorbsDenseOperand) {
  constexpr std::size_t kN = 10000;
  SparseRumorSet dense_side(kN);
  for (std::size_t i = 0; i < kN / 2; ++i) dense_side.set(i);
  ASSERT_FALSE(dense_side.is_sparse());
  SparseRumorSet sparse_side(kN);
  sparse_side.set(123);
  sparse_side.set(7777);
  const auto d = sparse_side.or_assign_changed(dense_side);
  EXPECT_EQ(d.added, kN / 2 - 1);  // 123 already present
  EXPECT_FALSE(sparse_side.is_sparse());
  EXPECT_TRUE(sparse_side.test(7777));
  EXPECT_TRUE(sparse_side.test(0));
}

TEST(CountRumorSet, SaturationCollapse) {
  constexpr std::size_t kN = 200;
  CountRumorSet r(kN);
  for (std::size_t i = 0; i < kN - 1; ++i) r.set(i);
  EXPECT_FALSE(r.saturated());
  r.set(kN - 1);
  EXPECT_TRUE(r.saturated());
  EXPECT_EQ(r.count(), kN);
  EXPECT_TRUE(r.test(57));
  // Union FROM a full set delivers everything missing at once.
  CountRumorSet receiver(kN);
  receiver.set(3);
  const auto d = receiver.or_assign_changed(r);
  EXPECT_TRUE(d.changed);
  EXPECT_EQ(d.added, kN - 1);
  EXPECT_TRUE(receiver.saturated());
  // Full == full, and full == dense-with-all-bits.
  CountRumorSet dense_full(kN);
  for (std::size_t i = 0; i < kN; ++i) dense_full.set(i);
  EXPECT_TRUE(r == dense_full);
  r.clear();
  EXPECT_FALSE(r.saturated());
  EXPECT_EQ(r.count(), 0u);
}

TEST(CountRumorSet, SaturationViaUnion) {
  constexpr std::size_t kN = 100;
  CountRumorSet a(kN), b(kN);
  for (std::size_t i = 0; i < kN; i += 2) a.set(i);
  for (std::size_t i = 1; i < kN; i += 2) b.set(i);
  const auto d = a.or_assign_changed(b);
  EXPECT_EQ(d.added, kN / 2);
  EXPECT_TRUE(a.saturated());
  EXPECT_FALSE(b.saturated());
}

// --- snapshot arena over alternative representations -----------------------

TYPED_TEST(RumorSetRepTest, SnapshotCacheRoundTrip) {
  constexpr std::size_t kN = 64;
  BasicSnapshotCache<TypeParam> cache(/*num_nodes=*/2, /*set_size=*/kN);
  TypeParam mine(kN);
  mine.set(0);
  mine.set(17);
  auto s1 = cache.shared(0, mine, mine.count());
  EXPECT_EQ(s1.count(), 2u);
  EXPECT_TRUE(s1.bits().test(17));
  // Unchanged source: the cache hands out the same block again.
  auto s2 = cache.shared(0, mine, mine.count());
  EXPECT_EQ(&s1.bits(), &s2.bits());
  // Mutate + invalidate: next capture sees the new contents, while the
  // outstanding refs still see the old immutable block.
  mine.set(42);
  cache.invalidate(0);
  auto s3 = cache.shared(0, mine, mine.count());
  EXPECT_EQ(s3.count(), 3u);
  EXPECT_TRUE(s3.bits().test(42));
  EXPECT_EQ(s1.count(), 2u);
  EXPECT_FALSE(s1.bits().test(42));
  // fresh() always deep-copies.
  auto f = cache.fresh(mine, mine.count());
  EXPECT_EQ(f.count(), 3u);
  EXPECT_TRUE(f.bits() == mine);
}

// --- runtime selection helpers ---------------------------------------------

TEST(RumorRepSelection, ParseAndNames) {
  EXPECT_EQ(parse_rumor_rep("dense"), RumorRep::kDense);
  EXPECT_EQ(parse_rumor_rep("sparse"), RumorRep::kSparse);
  EXPECT_EQ(parse_rumor_rep("count"), RumorRep::kCount);
  EXPECT_EQ(parse_rumor_rep("auto"), RumorRep::kAuto);
  EXPECT_THROW(parse_rumor_rep("bitmap"), std::invalid_argument);
  EXPECT_EQ(rumor_rep_name(RumorRep::kSparse), "sparse");
}

TEST(RumorRepSelection, AutoResolvesByNodeCount) {
  EXPECT_EQ(resolve_rumor_rep(RumorRep::kAuto, 1000), RumorRep::kDense);
  EXPECT_EQ(resolve_rumor_rep(RumorRep::kAuto, kDenseNodeThreshold),
            RumorRep::kSparse);
  EXPECT_EQ(resolve_rumor_rep(RumorRep::kAuto, 1u << 20), RumorRep::kSparse);
  EXPECT_EQ(resolve_rumor_rep(RumorRep::kSparse, 10), RumorRep::kSparse);
  EXPECT_EQ(resolve_rumor_rep(RumorRep::kCount, 1u << 20), RumorRep::kCount);
}

struct Probe {
  template <RumorSetRep R>
  std::size_t operator()() const {
    R r(5);
    r.set(2);
    return r.count() + (std::is_same_v<R, Bitset> ? 100 : 0) +
           (std::is_same_v<R, SparseRumorSet> ? 200 : 0) +
           (std::is_same_v<R, CountRumorSet> ? 300 : 0);
  }
};

TEST(RumorRepSelection, WithRumorRepBridges) {
  EXPECT_EQ(with_rumor_rep(RumorRep::kDense, 10, Probe{}), 101u);
  EXPECT_EQ(with_rumor_rep(RumorRep::kSparse, 10, Probe{}), 201u);
  EXPECT_EQ(with_rumor_rep(RumorRep::kCount, 10, Probe{}), 301u);
  EXPECT_EQ(with_rumor_rep(RumorRep::kAuto, 10, Probe{}), 101u);
  EXPECT_EQ(with_rumor_rep(RumorRep::kAuto, kDenseNodeThreshold, Probe{}),
            201u);
}

}  // namespace
}  // namespace latgossip
