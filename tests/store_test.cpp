// Tests for the content-addressed experiment store: JSON round trips,
// canonical key derivation (field-order independence + golden digests),
// hit/miss/insert semantics, crash recovery from corrupted/truncated
// logs, concurrent inserts from TrialPool workers, and the
// run_trials_stored hit/miss bit-identity + verify contract.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/push_pull.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "obs/recorder.h"
#include "sim/engine.h"
#include "sim/parallel.h"
#include "sim/pool.h"
#include "store/cached_trials.h"
#include "store/json.h"
#include "store/key.h"
#include "store/store.h"

namespace latgossip {
namespace {

// Fresh scratch directory per test (removed up front so a crashed
// previous run can't leak state into this one).
std::string scratch_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("latgossip_store_test_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

WeightedGraph test_graph() {
  Rng grng(7);
  auto g = make_erdos_renyi(48, 0.15, grng);
  assign_random_uniform_latency(g, 1, 6, grng);
  return g;
}

// ---------------------------------------------------------------------------
// JSON parser / serializer

TEST(StoreJson, ParsesScalarsAndStructure) {
  std::string err;
  const auto doc = json_parse(
      R"({"a":1,"b":-2.5,"c":"x\ny","d":[true,false,null],"e":{"f":42}})",
      &err);
  ASSERT_TRUE(doc) << err;
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->get_i64("a", -1), 1);
  EXPECT_DOUBLE_EQ(doc->get_double("b", 0), -2.5);
  EXPECT_EQ(doc->get_string("c", ""), "x\ny");
  const JsonValue* d = doc->get("d");
  ASSERT_TRUE(d != nullptr && d->is_array());
  ASSERT_EQ(d->items().size(), 3u);
  EXPECT_TRUE(d->items()[0].as_bool());
  EXPECT_FALSE(d->items()[1].as_bool());
  EXPECT_TRUE(d->items()[2].is_null());
  const JsonValue* e = doc->get("e");
  ASSERT_TRUE(e != nullptr && e->is_object());
  EXPECT_EQ(e->get_i64("f", -1), 42);
  EXPECT_EQ(doc->get("missing"), nullptr);
  EXPECT_EQ(doc->get_i64("missing", -7), -7);
}

TEST(StoreJson, ExactInt64RoundTrip) {
  const auto doc = json_parse("[9223372036854775807,-9223372036854775808,0]");
  ASSERT_TRUE(doc);
  ASSERT_EQ(doc->items().size(), 3u);
  for (const JsonValue& v : doc->items()) EXPECT_TRUE(v.is_integer());
  EXPECT_EQ(doc->items()[0].as_i64(), INT64_MAX);
  EXPECT_EQ(doc->items()[1].as_i64(), INT64_MIN);
  EXPECT_EQ(json_serialize(*doc),
            "[9223372036854775807,-9223372036854775808,0]");
  // Fractions and exponents are numbers but not exact integers.
  const auto frac = json_parse("[1.5,1e3]");
  ASSERT_TRUE(frac);
  EXPECT_FALSE(frac->items()[0].is_integer());
  EXPECT_FALSE(frac->items()[1].is_integer());
  EXPECT_DOUBLE_EQ(frac->items()[1].as_double(), 1000.0);
}

TEST(StoreJson, StringEscapes) {
  const auto doc = json_parse(R"(["\"\\\/\b\f\n\r\t","Aé"])");
  ASSERT_TRUE(doc);
  EXPECT_EQ(doc->items()[0].as_string(), "\"\\/\b\f\n\r\t");
  EXPECT_EQ(doc->items()[1].as_string(), "A\xc3\xa9");  // é in UTF-8
  // Serialization escapes control characters back out (\b and \f take
  // the generic \u00XX control form; both spellings are valid JSON).
  const std::string out = json_serialize(doc->items()[0]);
  EXPECT_EQ(out, "\"\\\"\\\\/\\u0008\\u000c\\n\\r\\t\"");
  const auto again = json_parse(out);
  ASSERT_TRUE(again);
  EXPECT_EQ(again->as_string(), doc->items()[0].as_string());
}

TEST(StoreJson, RejectsMalformed) {
  std::string err;
  EXPECT_FALSE(json_parse("", &err));
  EXPECT_FALSE(json_parse("{", &err));
  EXPECT_FALSE(json_parse("{\"a\":1} trailing", &err));
  EXPECT_FALSE(json_parse("\"unterminated", &err));
  EXPECT_FALSE(json_parse("{'single':1}", &err));
  EXPECT_FALSE(json_parse("nulll", &err));
  EXPECT_FALSE(json_parse("[1,]", &err));
  EXPECT_FALSE(err.empty());
  // Depth cap: 70 nested arrays exceed the 64-level limit.
  std::string deep(70, '[');
  deep += std::string(70, ']');
  EXPECT_FALSE(json_parse(deep));
  EXPECT_TRUE(json_parse(std::string(60, '[') + std::string(60, ']')));
}

TEST(StoreJson, SerializeParseFixedPoint) {
  const std::string canon =
      R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null},"e":-7})";
  const auto doc = json_parse(canon);
  ASSERT_TRUE(doc);
  const std::string once = json_serialize(*doc);
  const auto doc2 = json_parse(once);
  ASSERT_TRUE(doc2);
  EXPECT_EQ(json_serialize(*doc2), once);
}

// ---------------------------------------------------------------------------
// Canonical keys

TEST(StoreKeySuite, FieldOrderIndependence) {
  KeyBuilder a;
  a.add("proto", "pushpull").add("seed", std::uint64_t{42}).add("n", "64");
  KeyBuilder b;
  b.add("n", "64").add("seed", std::uint64_t{42}).add("proto", "pushpull");
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(StoreKeySuite, FieldIdentityMatters) {
  const auto base = KeyBuilder()
                        .add("proto", "pushpull")
                        .add("seed", std::uint64_t{42})
                        .digest();
  // Different value.
  EXPECT_NE(base, KeyBuilder()
                      .add("proto", "pushpull")
                      .add("seed", std::uint64_t{43})
                      .digest());
  // Same bytes under a different field name.
  EXPECT_NE(base, KeyBuilder()
                      .add("proto2", "pushpull")
                      .add("seed", std::uint64_t{42})
                      .digest());
  // Value/name boundary shifts must not collide.
  EXPECT_NE(KeyBuilder().add("ab", "c").digest(),
            KeyBuilder().add("a", "bc").digest());
}

TEST(StoreKeySuite, DuplicateFieldThrows) {
  KeyBuilder b;
  b.add("seed", std::uint64_t{1}).add("seed", std::uint64_t{2});
  EXPECT_THROW(b.digest(), std::invalid_argument);
}

TEST(StoreKeySuite, HexRoundTrip) {
  const StoreKey k{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  const std::string hex = k.hex();
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
  const auto back = StoreKey::from_hex(hex);
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, k);
  EXPECT_FALSE(StoreKey::from_hex("short"));
  EXPECT_FALSE(StoreKey::from_hex(std::string(32, 'g')));
  EXPECT_FALSE(StoreKey::from_hex(hex + "00"));
}

// Golden digests: these pin the canonical serialization and the hash.
// A mismatch means every existing store on disk just went cold — only
// accept it for an intentional format change, alongside a
// kStoreModelVersion bump.
TEST(StoreKeySuite, GoldenDigests) {
  const StoreKey k = KeyBuilder()
                         .add("proto", "pushpull")
                         .add("graph", std::uint64_t{0x1234})
                         .add("seed", std::uint64_t{42})
                         .digest();
  EXPECT_EQ(k.hex(), "6e046b84156426966fa13893df82fd0e");

  CellSpec cell;
  cell.protocol = "pushpull";
  cell.graph = 0xfeedfacecafebeefULL;
  cell.source = 3;
  cell.max_rounds = 1000;
  const StoreKey ck = cell_key(cell, 0xabcdef0123456789ULL);
  EXPECT_EQ(ck.hex(), "574ce4ad8edcea2761ef6906e682a4ce");
}

TEST(StoreKeySuite, GraphDigestSensitivity) {
  EXPECT_EQ(graph_digest(make_path(6)), graph_digest(make_path(6)));
  EXPECT_NE(graph_digest(make_path(6)), graph_digest(make_path(7)));
  EXPECT_NE(graph_digest(make_path(6)), graph_digest(make_cycle(6)));
  // One latency flip changes the content address.
  WeightedGraph a = make_path(6);
  WeightedGraph b = make_path(6);
  assign_uniform_latency(b, 2);
  EXPECT_NE(graph_digest(a), graph_digest(b));
}

TEST(StoreKeySuite, CellKeyCoversEveryField) {
  CellSpec base;
  base.protocol = "pushpull";
  base.graph = 99;
  base.source = 0;
  base.max_rounds = 100;
  std::set<std::string> seen;
  seen.insert(cell_key(base, 7).hex());
  auto expect_new = [&](const CellSpec& c, std::uint64_t ts) {
    EXPECT_TRUE(seen.insert(cell_key(c, ts).hex()).second)
        << "collision in cell_key field coverage";
  };
  CellSpec c = base;
  c.protocol = "flooding/dense";
  expect_new(c, 7);
  c = base;
  c.graph = 100;
  expect_new(c, 7);
  c = base;
  c.source = 1;
  expect_new(c, 7);
  c = base;
  c.max_rounds = 101;
  expect_new(c, 7);
  c = base;
  c.kind = "curve";
  expect_new(c, 7);
  c = base;
  c.faults = "{\"drop\":0.1}";
  expect_new(c, 7);
  c = base;
  c.model = "latgossip.model.v2";
  expect_new(c, 7);
  expect_new(base, 8);  // trial seed
}

// ---------------------------------------------------------------------------
// Store round trips + persistence

StoreRecord sample_record(std::uint64_t salt) {
  StoreRecord rec;
  rec.result.rounds = static_cast<Round>(10 + salt);
  rec.result.completed = (salt % 2) == 0;
  rec.result.activations = 100 + salt;
  rec.result.messages_delivered = 200 + salt;
  rec.result.messages_dropped = salt;
  rec.result.exchanges_rejected = salt / 2;
  rec.result.payload_bits = 1000 + salt;
  rec.result.max_inflight = 5 + salt;
  rec.result.fingerprint = 0xdeadbeef00000000ULL | salt;
  rec.wall_ms = 1.25 * static_cast<double>(salt + 1);
  return rec;
}

TEST(Store, InsertLookupRoundTrip) {
  const std::string dir = scratch_dir("roundtrip");
  ExperimentStore store(dir);
  const StoreKey k1{1, 2};
  const StoreKey k2{3, 4};

  EXPECT_FALSE(store.lookup(k1).has_value());  // miss
  StoreRecord rec = sample_record(1);
  rec.meta = R"({"curve":[1,2,3]})";
  EXPECT_TRUE(store.insert(k1, rec));
  EXPECT_TRUE(store.contains(k1));
  EXPECT_FALSE(store.contains(k2));

  const auto got = store.lookup(k1);
  ASSERT_TRUE(got);
  EXPECT_EQ(got->result, rec.result);  // fingerprint included
  EXPECT_DOUBLE_EQ(got->wall_ms, rec.wall_ms);
  EXPECT_EQ(got->meta, rec.meta);

  // First writer wins: duplicate insert is a no-op.
  StoreRecord other = sample_record(9);
  EXPECT_FALSE(store.insert(k1, other));
  EXPECT_EQ(store.lookup(k1)->result, rec.result);

  const StoreStats s = store.stats();
  EXPECT_EQ(s.records, 1u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.recovered_records, 0u);
  EXPECT_FALSE(s.repaired);
  std::filesystem::remove_all(dir);
}

TEST(Store, PersistsAcrossReopen) {
  const std::string dir = scratch_dir("persist");
  std::vector<StoreKey> keys;
  for (std::uint64_t i = 0; i < 10; ++i) keys.push_back(StoreKey{i, i * 17});
  {
    ExperimentStore store(dir);
    for (std::uint64_t i = 0; i < keys.size(); ++i)
      ASSERT_TRUE(store.insert(keys[i], sample_record(i)));
  }
  ExperimentStore reopened(dir);
  EXPECT_EQ(reopened.size(), keys.size());
  for (std::uint64_t i = 0; i < keys.size(); ++i) {
    const auto got = reopened.lookup(keys[i]);
    ASSERT_TRUE(got) << "key " << i << " lost across reopen";
    EXPECT_EQ(got->result, sample_record(i).result);
  }
  EXPECT_FALSE(reopened.stats().repaired);
  std::filesystem::remove_all(dir);
}

TEST(Store, RecordLineParseRejectsDamage) {
  const StoreKey k{7, 8};
  const StoreRecord rec = sample_record(3);
  const std::string line = store_record_line(k, rec);
  const auto parsed = parse_store_record(line);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->first, k);
  EXPECT_EQ(parsed->second.result, rec.result);

  EXPECT_FALSE(parse_store_record(""));
  EXPECT_FALSE(parse_store_record("not json at all"));
  EXPECT_FALSE(parse_store_record(line.substr(0, line.size() / 2)));
  // Wrong schema.
  std::string wrong = line;
  const auto pos = wrong.find("latgossip.store.v1");
  wrong.replace(pos, 18, "latgossip.store.v9");
  EXPECT_FALSE(parse_store_record(wrong));
  // Malformed key hex.
  std::string badkey = line;
  badkey.replace(badkey.find("\"key\":\"") + 7, 4, "zzzz");
  EXPECT_FALSE(parse_store_record(badkey));
  // Missing result field.
  std::string nofield = line;
  const auto rpos = nofield.find("\"rounds\"");
  ASSERT_NE(rpos, std::string::npos);
  nofield.replace(rpos, 8, "\"r0unds\"");
  EXPECT_FALSE(parse_store_record(nofield));
}

TEST(Store, RecoversFromCorruptedAndTruncatedLog) {
  const std::string dir = scratch_dir("recover");
  std::vector<StoreKey> keys;
  for (std::uint64_t i = 0; i < 6; ++i) keys.push_back(StoreKey{i + 1, i});
  std::string log_path;
  {
    ExperimentStore store(dir);
    log_path = store.log_path();
    for (std::uint64_t i = 0; i < keys.size(); ++i)
      ASSERT_TRUE(store.insert(keys[i], sample_record(i)));
  }
  // Damage the middle of the log (a bad sector) and truncate the tail
  // (a crash mid-append): read all lines, corrupt line 2, chop half of
  // the final line, and append one garbage line for good measure.
  std::vector<std::string> lines;
  {
    std::ifstream in(log_path);
    std::string l;
    while (std::getline(in, l)) lines.push_back(l);
  }
  ASSERT_EQ(lines.size(), keys.size());
  lines[2] = "{\"schema\":\"latgossip.store.v1\",\"key\":CORRUPTED";
  lines.back() = lines.back().substr(0, lines.back().size() / 2);
  {
    std::ofstream out(log_path, std::ios::trunc);
    for (const std::string& l : lines) out << l << '\n';
    out << "garbage that is not json\n";
  }

  ExperimentStore recovered(dir);
  // Valid records survive — including the ones *after* the corrupted
  // line; the damaged line, the truncated tail, and the garbage are
  // dropped and counted.
  EXPECT_EQ(recovered.size(), keys.size() - 2);
  EXPECT_EQ(recovered.stats().recovered_records, 3u);
  EXPECT_TRUE(recovered.stats().repaired);
  EXPECT_TRUE(recovered.contains(keys[3]));  // after the corruption
  EXPECT_FALSE(recovered.contains(keys[2]));
  EXPECT_FALSE(recovered.contains(keys.back()));
  // Repair-on-open rewrote the log: a second open sees a clean file.
  ExperimentStore clean(dir);
  EXPECT_EQ(clean.size(), keys.size() - 2);
  EXPECT_EQ(clean.stats().recovered_records, 0u);
  EXPECT_FALSE(clean.stats().repaired);
  // And the store stays writable after repair.
  EXPECT_TRUE(clean.insert(StoreKey{100, 100}, sample_record(7)));
  std::filesystem::remove_all(dir);
}

TEST(Store, ConcurrentInsertsFromPoolWorkers) {
  const std::string dir = scratch_dir("concurrent");
  ExperimentStore store(dir);
  constexpr std::size_t kCells = 64;
  // Workers hammer insert + lookup + contains concurrently; every
  // observable must come out consistent (exercised under TSan in CI).
  TrialPool::global().run(kCells, 8, [&](std::size_t i, std::size_t) {
    const StoreKey key{i + 1, i * 31};
    ASSERT_TRUE(store.insert(key, sample_record(i)));
    ASSERT_FALSE(store.insert(key, sample_record(i)));  // dup is a no-op
    const auto got = store.lookup(key);
    ASSERT_TRUE(got);
    EXPECT_EQ(got->result, sample_record(i).result);
    store.contains(StoreKey{(i + 7) % kCells + 1, 0});
  });
  EXPECT_EQ(store.size(), kCells);
  EXPECT_EQ(store.stats().inserts, kCells);
  // Every record made it to disk intact.
  ExperimentStore reopened(dir);
  EXPECT_EQ(reopened.size(), kCells);
  EXPECT_EQ(reopened.stats().recovered_records, 0u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// run_trials_stored

TrialWsFn recorded_push_pull_trial(const WeightedGraph& g) {
  return [&g](std::size_t, Rng rng, TrialWorkspace& ws) {
    thread_local EventRecorder recorder;
    recorder.clear();
    NetworkView view(g, false);
    auto& proto = ws.slot<PushPullBroadcast>(view, 0, rng);
    proto.reset(view, 0, rng);
    SimOptions opts;
    opts.workspace = &ws;
    opts.recorder = &recorder;
    SimResult result = run_gossip(g, proto, opts);
    result.fingerprint = recorder.fingerprint();
    return result;
  };
}

StoreBinding bind_cell(ExperimentStore& store, const WeightedGraph& g,
                       bool verify = false) {
  StoreBinding binding;
  binding.store = &store;
  binding.verify = verify;
  binding.cell.protocol = "pushpull";
  binding.cell.graph = graph_digest(g);
  binding.cell.source = 0;
  binding.cell.max_rounds = 5'000'000;
  return binding;
}

TEST(RunTrialsStored, MissThenHitBitIdentical) {
  const std::string dir = scratch_dir("stored_hit");
  const WeightedGraph g = test_graph();
  const TrialWsFn trial = recorded_push_pull_trial(g);
  ExperimentStore store(dir);
  StoredBatchStats cold, warm;

  const TrialAggregate fresh =
      run_trials_stored(bind_cell(store, g), &cold, 8, 4, 99, trial);
  EXPECT_EQ(cold.misses, 8u);
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.verified, 0u);

  const TrialAggregate cached =
      run_trials_stored(bind_cell(store, g), &warm, 8, 4, 99, trial);
  EXPECT_EQ(warm.hits, 8u);
  EXPECT_EQ(warm.misses, 0u);

  // Hit batches aggregate bit-identically to computed batches —
  // per-trial results, merged fingerprint, and accumulators.
  ASSERT_EQ(cached.trials.size(), fresh.trials.size());
  for (std::size_t t = 0; t < fresh.trials.size(); ++t)
    EXPECT_EQ(cached.trials[t], fresh.trials[t]) << "trial " << t;
  EXPECT_EQ(cached.fingerprint, fresh.fingerprint);
  EXPECT_EQ(cached.num_completed, fresh.num_completed);
  EXPECT_DOUBLE_EQ(cached.rounds.mean(), fresh.rounds.mean());
  std::filesystem::remove_all(dir);
}

TEST(RunTrialsStored, ResumedSweepHitsComputedCells) {
  const std::string dir = scratch_dir("stored_resume");
  const WeightedGraph g = test_graph();
  const TrialWsFn trial = recorded_push_pull_trial(g);
  ExperimentStore store(dir);
  StoredBatchStats first, resumed;

  // 4 trials now, 8 later: per-trial keys derive from trial_seed(), so
  // the wider sweep re-uses the 4 computed cells and only pays for the
  // new ones.
  run_trials_stored(bind_cell(store, g), &first, 4, 2, 99, trial);
  EXPECT_EQ(first.misses, 4u);
  const TrialAggregate agg =
      run_trials_stored(bind_cell(store, g), &resumed, 8, 2, 99, trial);
  EXPECT_EQ(resumed.hits, 4u);
  EXPECT_EQ(resumed.misses, 4u);

  // And the mixed hit/miss batch equals an all-fresh batch.
  const std::string dir2 = scratch_dir("stored_resume_fresh");
  ExperimentStore fresh_store(dir2);
  const TrialAggregate fresh =
      run_trials_stored(bind_cell(fresh_store, g), nullptr, 8, 2, 99, trial);
  EXPECT_EQ(agg.fingerprint, fresh.fingerprint);
  for (std::size_t t = 0; t < 8; ++t)
    EXPECT_EQ(agg.trials[t], fresh.trials[t]);
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(dir2);
}

TEST(RunTrialsStored, SeedChangesMissTheCache) {
  const std::string dir = scratch_dir("stored_seed");
  const WeightedGraph g = test_graph();
  const TrialWsFn trial = recorded_push_pull_trial(g);
  ExperimentStore store(dir);
  run_trials_stored(bind_cell(store, g), nullptr, 4, 2, 99, trial);
  StoredBatchStats other;
  run_trials_stored(bind_cell(store, g), &other, 4, 2, 100, trial);
  EXPECT_EQ(other.hits, 0u);
  EXPECT_EQ(other.misses, 4u);
  std::filesystem::remove_all(dir);
}

TEST(RunTrialsStored, VerifyPassesOnHonestCacheAndCatchesPoison) {
  const std::string dir = scratch_dir("stored_verify");
  const WeightedGraph g = test_graph();
  const TrialWsFn trial = recorded_push_pull_trial(g);
  ExperimentStore store(dir);
  run_trials_stored(bind_cell(store, g), nullptr, 4, 2, 99, trial);

  StoredBatchStats verified;
  run_trials_stored(bind_cell(store, g, /*verify=*/true), &verified, 4, 2, 99,
                    trial);
  EXPECT_EQ(verified.hits, 4u);
  EXPECT_EQ(verified.verified, 4u);

  // Poison one cell in a fresh store: verify must throw, naming the key.
  const std::string dir2 = scratch_dir("stored_poison");
  ExperimentStore poisoned(dir2);
  StoreBinding binding = bind_cell(poisoned, g, /*verify=*/true);
  StoreRecord bogus = sample_record(5);
  const StoreKey key = cell_key(binding.cell, trial_seed(99, 0));
  ASSERT_TRUE(poisoned.insert(key, bogus));
  EXPECT_THROW(
      run_trials_stored(binding, nullptr, 4, 2, 99, trial),
      std::runtime_error);
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(dir2);
}

TEST(RunTrialsStored, MetaRoundTrip) {
  const std::string dir = scratch_dir("stored_meta");
  const WeightedGraph g = test_graph();
  const TrialWsFn trial = recorded_push_pull_trial(g);
  ExperimentStore store(dir);

  StoreBinding binding = bind_cell(store, g);
  binding.cell.kind = "meta_test";
  binding.meta_fn = [](std::size_t t) {
    return "{\"trial\":" + std::to_string(t) + "}";
  };
  std::vector<std::string> replayed(4);
  binding.on_hit_meta = [&](std::size_t t, const std::string& meta) {
    replayed[t] = meta;
  };
  run_trials_stored(binding, nullptr, 4, 2, 99, trial);
  EXPECT_EQ(replayed, std::vector<std::string>(4));  // misses don't replay

  run_trials_stored(binding, nullptr, 4, 2, 99, trial);
  for (std::size_t t = 0; t < 4; ++t)
    EXPECT_EQ(replayed[t], "{\"trial\":" + std::to_string(t) + "}");
  std::filesystem::remove_all(dir);
}

TEST(RunTrialsStored, RequiresStore) {
  StoreBinding binding;  // no store bound
  EXPECT_THROW(run_trials_stored(binding, nullptr, 1, 1, 1,
                                 [](std::size_t, Rng, TrialWorkspace&) {
                                   return SimResult{};
                                 }),
               std::invalid_argument);
}

}  // namespace
}  // namespace latgossip
