// Property tests for dynamic topologies (sim/dynamics.h): spec
// validation and parsing, engine-plan vs oracle-brute-force agreement
// on the derived schedules (drift factors, churn intervals, rejoin
// resets), engine runs under churn respecting absence invariants,
// rejoin-with-reset equalling a fresh node, the adversary's frontier
// targeting, deterministic replay, and the shrinker reducing an
// injected dynamics bug to a tiny counterexample.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "check/case_gen.h"
#include "check/differential.h"
#include "check/invariants.h"
#include "check/shrink.h"
#include "core/flooding.h"
#include "core/push_pull.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "obs/recorder.h"
#include "sim/dynamics.h"
#include "sim/engine.h"
#include "sim/freshness.h"
#include "sim/oracle.h"
#include "util/rumor_set.h"

namespace latgossip {
namespace {

DynamicSpec drift_spec(std::uint64_t step, std::uint64_t bound,
                       std::uint64_t seed) {
  DynamicSpec d;
  d.drift_step = step;
  d.drift_bound = bound;
  d.seed = seed;
  return d;
}

DynamicSpec churn_spec(double prob, Round window, Round absence, int mode,
                       NodeId spare, std::uint64_t seed) {
  DynamicSpec d;
  d.churn_prob = prob;
  d.churn_window = window;
  d.churn_absence = absence;
  d.churn_mode = mode;
  d.churn_spare = spare;
  d.seed = seed;
  return d;
}

TEST(DynamicSpecTest, ValidationCatchesBadKnobs) {
  EXPECT_TRUE(dynamic_spec_error(DynamicSpec{}, 4).empty());

  DynamicSpec d = drift_spec(64, 2048, 7);
  EXPECT_TRUE(dynamic_spec_error(d, 4).empty());
  d.drift_step = 1024;  // a full step would allow factor 0
  EXPECT_FALSE(dynamic_spec_error(d, 4).empty());
  d = drift_spec(64, 512, 7);  // bound below the 1024 fixed-point one
  EXPECT_FALSE(dynamic_spec_error(d, 4).empty());

  d = churn_spec(0.5, 8, 4, 1, 0, 7);
  EXPECT_TRUE(dynamic_spec_error(d, 4).empty());
  EXPECT_FALSE(dynamic_spec_error(d, 1).empty());  // churn needs n >= 2
  d.churn_prob = 1.5;
  EXPECT_FALSE(dynamic_spec_error(d, 4).empty());
  d = churn_spec(0.5, 0, 4, 1, 0, 7);  // empty leave window
  EXPECT_FALSE(dynamic_spec_error(d, 4).empty());
  d = churn_spec(0.5, 8, 4, 3, 0, 7);  // mode out of range
  EXPECT_FALSE(dynamic_spec_error(d, 4).empty());
  d = churn_spec(0.5, 8, 4, 1, 9, 4);  // spare out of range
  EXPECT_FALSE(dynamic_spec_error(d, 4).empty());

  d = DynamicSpec{};
  d.adv_slow = 512;  // speedups are not adversarial
  EXPECT_FALSE(dynamic_spec_error(d, 4).empty());
  d = DynamicSpec{};
  d.adv_source = 4;
  d.adv_slow = 2048;
  EXPECT_FALSE(dynamic_spec_error(d, 4).empty());
  d = drift_spec(64, 2048, 7);
  d.seed = 0;
  EXPECT_FALSE(dynamic_spec_error(d, 4).empty());

  // The plan constructor enforces the same contract.
  EXPECT_THROW(DynamicPlan(4, 6, drift_spec(2000, 2048, 7)),
               std::invalid_argument);
}

TEST(DynamicSpecTest, ParseRoundTripAndDefaults) {
  const DynamicSpec d = parse_dynamics_spec(
      "drift=32,drift-bound=4096,churn=0.25,churn-window=12,"
      "churn-absence=3,churn-mode=mixed,adv=1536,seed=11",
      8, /*source=*/2);
  EXPECT_EQ(d.drift_step, 32u);
  EXPECT_EQ(d.drift_bound, 4096u);
  EXPECT_DOUBLE_EQ(d.churn_prob, 0.25);
  EXPECT_EQ(d.churn_window, 12);
  EXPECT_EQ(d.churn_absence, 3);
  EXPECT_EQ(d.churn_mode, 2);
  EXPECT_EQ(d.churn_spare, 2u);
  EXPECT_EQ(d.adv_slow, 1536u);
  EXPECT_EQ(d.adv_source, 2u);
  EXPECT_EQ(d.seed, 11u);
  EXPECT_TRUE(d.drift_active() && d.churn_active() && d.adv_active());
  EXPECT_FALSE(describe_dynamics(d).empty());

  // Churn alone picks up the documented window/absence/mode defaults.
  const DynamicSpec c = parse_dynamics_spec("churn=0.5", 8, 0);
  EXPECT_EQ(c.churn_window, 16);
  EXPECT_EQ(c.churn_absence, 8);
  EXPECT_EQ(c.churn_mode, 1);
  EXPECT_FALSE(c.drift_active());
  EXPECT_FALSE(c.adv_active());

  EXPECT_THROW(parse_dynamics_spec("drift=abc", 8, 0), std::invalid_argument);
  EXPECT_THROW(parse_dynamics_spec("warp=9", 8, 0), std::invalid_argument);
  EXPECT_THROW(parse_dynamics_spec("churn-mode=gone", 8, 0),
               std::invalid_argument);
  EXPECT_THROW(parse_dynamics_spec("churn=0.5", 1, 0), std::invalid_argument);
}

// The plan's incremental per-edge drift cache and the oracle's
// from-scratch recomputation are independent mechanisations of the same
// contract; they must agree on every (edge, round), stay inside the
// clamp band, and replay identically across detach()/apply() cycles.
TEST(DynamicsDriftTest, PlanMatchesOracleAndReplays) {
  const std::size_t num_edges = 9;
  for (std::uint64_t seed : {1ull, 42ull, 9001ull}) {
    const DynamicSpec spec = drift_spec(128, 4096, seed);
    DynamicPlan plan(6, num_edges, spec);
    SimOptions opts;
    plan.apply(opts);
    std::vector<Latency> first_pass;
    for (Round r = 0; r <= 40; ++r) {
      for (EdgeId e = 0; e < num_edges; ++e) {
        const Latency base = 1 + static_cast<Latency>(e % 5);
        const Latency adj = plan.adjust_latency(0, 1, e, base, r);
        first_pass.push_back(adj);
        const std::uint64_t f =
            oracle_detail::oracle_drift_factor(spec, e, r);
        const Latency expect = std::max<Latency>(
            1, static_cast<Latency>(
                   (static_cast<std::uint64_t>(base) * f) / 1024));
        EXPECT_EQ(adj, expect) << "edge " << e << " round " << r;
        EXPECT_GE(f, 1024ull * 1024ull / spec.drift_bound);
        EXPECT_LE(f, spec.drift_bound);
        EXPECT_GE(adj, 1);
      }
    }
    // Replay: detach + re-apply rewinds the incremental cache.
    plan.detach();
    plan.apply(opts);
    std::size_t i = 0;
    for (Round r = 0; r <= 40; ++r)
      for (EdgeId e = 0; e < num_edges; ++e) {
        const Latency base = 1 + static_cast<Latency>(e % 5);
        EXPECT_EQ(plan.adjust_latency(0, 1, e, base, r), first_pass[i++]);
      }
  }
}

TEST(DynamicsChurnTest, PlanMatchesOracleOnAbsenceAndResets) {
  const std::size_t n = 12;
  for (std::uint64_t seed : {3ull, 77ull, 500ull}) {
    const DynamicSpec spec = churn_spec(0.6, 10, 6, 2, /*spare=*/4, seed);
    DynamicPlan plan(n, 20, spec);
    SimOptions opts;
    plan.apply(opts);
    bool anyone_left = false;
    for (Round r = 0; r <= 30; ++r) {
      // Membership of the reset span vs the oracle's per-node answer.
      const std::span<const NodeId> resets = plan.resets_at(r);
      EXPECT_TRUE(std::is_sorted(resets.begin(), resets.end()));
      for (NodeId u = 0; u < n; ++u) {
        EXPECT_EQ(plan.absent(u, r),
                  oracle_detail::oracle_node_absent(spec, u, r))
            << "node " << u << " round " << r;
        const bool in_span =
            std::find(resets.begin(), resets.end(), u) != resets.end();
        EXPECT_EQ(in_span,
                  oracle_detail::oracle_node_resets_at(spec, u, r))
            << "node " << u << " round " << r;
        if (plan.absent(u, r)) {
          anyone_left = true;
          EXPECT_NE(u, spec.churn_spare);  // the spare never leaves
        }
      }
    }
    EXPECT_TRUE(anyone_left) << "churn=0.6 produced no churn at seed "
                             << seed;
  }
}

TEST(DynamicsChurnTest, AbsenceBiasExtendsTheOracleWindow) {
  // The test-only ModelBug knob: a bias must strictly extend some
  // node's absence, which is what makes the planted bug observable.
  const DynamicSpec spec = churn_spec(0.9, 6, 3, 0, 0, 13);
  bool extended = false;
  for (NodeId u = 0; u < 8 && !extended; ++u)
    for (Round r = 0; r <= 30; ++r)
      if (!oracle_detail::oracle_node_absent(spec, u, r) &&
          oracle_detail::oracle_node_absent(spec, u, r, /*bias=*/4)) {
        extended = true;
        break;
      }
  EXPECT_TRUE(extended);
}

TEST(DynamicsAdversaryTest, SlowsOnlyFrontierCrossingEdges) {
  DynamicSpec spec;
  spec.adv_slow = 2048;  // 2x
  spec.adv_source = 0;
  spec.seed = 5;
  DynamicPlan plan(4, 4, spec);
  SimOptions opts;
  plan.apply(opts);
  // Initially touched = {0}: edges leaving node 0 cross the frontier.
  EXPECT_EQ(plan.adjust_latency(0, 1, 0, 10, 1), 20);
  EXPECT_EQ(plan.adjust_latency(1, 0, 0, 10, 1), 20);
  EXPECT_EQ(plan.adjust_latency(1, 2, 1, 10, 1), 10);  // both untouched
  // A successful delivery moves node 1 inside the frontier.
  plan.note_delivery(1, 2);
  EXPECT_EQ(plan.adjust_latency(0, 1, 0, 10, 3), 10);  // now interior
  EXPECT_EQ(plan.adjust_latency(1, 2, 1, 10, 3), 20);  // new frontier
  // Re-apply resets the touched set back to the adversary's source.
  plan.detach();
  plan.apply(opts);
  EXPECT_EQ(plan.adjust_latency(1, 2, 1, 10, 1), 10);
  EXPECT_EQ(plan.adjust_latency(0, 1, 0, 10, 1), 20);
}

TEST(DynamicsEngineTest, HookWiringAndDeterministicReplay) {
  Rng graph_rng(9);
  const auto g = make_erdos_renyi(20, 0.3, graph_rng);
  ASSERT_TRUE(g.is_connected());
  DynamicSpec spec = drift_spec(64, 2048, 21);
  spec.adv_slow = 1536;
  DynamicPlan plan(g.num_nodes(), g.num_edges(), spec);

  SimOptions opts;
  EXPECT_FALSE(opts.any_hooks());
  plan.apply(opts);
  EXPECT_TRUE(opts.any_hooks());
  opts.reset_observers();
  EXPECT_FALSE(opts.any_hooks());
  plan.detach();

  auto run_once = [&]() {
    thread_local EventRecorder rec;
    rec.clear();
    SimOptions o;
    o.max_rounds = 5000;
    o.recorder = &rec;
    DynamicPlan p(g.num_nodes(), g.num_edges(), spec);
    p.apply(o);
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, Rng(17));
    const SimResult res = run_gossip(g, proto, o);
    EXPECT_TRUE(res.completed);
    return rec.fingerprint();
  };
  // Same (protocol seed, dynamics spec) => bit-identical event stream.
  EXPECT_EQ(run_once(), run_once());
}

TEST(DynamicsEngineTest, ChurnRunSatisfiesAbsenceInvariants) {
  Rng graph_rng(4);
  auto g = make_erdos_renyi(24, 0.35, graph_rng);
  ASSERT_TRUE(g.is_connected());
  Rng lat_rng(8);
  assign_random_uniform_latency(g, 1, 5, lat_rng);
  const DynamicSpec spec = churn_spec(0.5, 12, 6, 1, /*spare=*/0, 33);
  DynamicPlan plan(g.num_nodes(), g.num_edges(), spec);

  EventRecorder rec;
  SimOptions opts;
  opts.max_rounds = 5000;
  opts.recorder = &rec;
  plan.apply(opts);
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(6));
  const SimResult res = run_gossip(g, proto, opts);

  InvariantInput in;
  in.graph = &g;
  in.result = res;
  in.recorder = &rec;
  in.dynamics = &spec;
  const auto failures = check_invariants(in, "engine");
  EXPECT_TRUE(failures.empty())
      << (failures.empty() ? "" : failures.front());
  // The scenario actually bit: someone was absent at some point.
  bool anyone_absent = false;
  for (NodeId u = 0; u < g.num_nodes() && !anyone_absent; ++u)
    for (Round r = 0; r <= res.rounds; ++r)
      if (plan.absent(u, r)) {
        anyone_absent = true;
        break;
      }
  EXPECT_TRUE(anyone_absent);
}

TEST(DynamicsResetTest, RejoinWithResetEqualsFreshNode) {
  // Broadcast: after reset a node is indistinguishable from one that
  // was never informed.
  const auto g = make_clique(6);
  {
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, Rng(2));
    SimOptions opts;
    opts.max_rounds = 500;
    ASSERT_TRUE(run_gossip(g, proto, opts).completed);
    ASSERT_TRUE(proto.informed(3));
    proto.reset_node(3, 40);
    EXPECT_FALSE(proto.informed(3));
    EXPECT_EQ(proto.inform_round(3), -1);
    EXPECT_EQ(proto.last_gain_round(3), -1);
  }
  // All-to-all flooding: after reset the node's rumor set equals the
  // fresh initial state {u}, and the satisfied accounting follows.
  {
    const std::size_t n = g.num_nodes();
    NetworkView view(g, false);
    BasicRoundRobinFlooding<Bitset> proto(view, GossipGoal::kAllToAll, 0,
                                          own_id_rumor_sets<Bitset>(n));
    BasicRoundRobinFlooding<Bitset> fresh(view, GossipGoal::kAllToAll, 0,
                                          own_id_rumor_sets<Bitset>(n));
    SimOptions opts;
    opts.max_rounds = 500;
    ASSERT_TRUE(run_gossip(g, proto, opts).completed);
    ASSERT_GT(proto.rumors()[2].count(), 1u);
    proto.reset_node(2, 40);
    for (NodeId v = 0; v < n; ++v)
      EXPECT_EQ(proto.rumors()[2].test(v), fresh.rumors()[2].test(v));
    EXPECT_EQ(proto.last_gain_round(2), 40);
    EXPECT_FALSE(proto.done(40));  // node 2 is unsatisfied again
  }
}

TEST(DynamicsFreshnessTest, AgesAreBoundedAndInformedCounted) {
  const auto g = make_cycle(10);
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(5));
  SimOptions opts;
  opts.max_rounds = 500;
  const SimResult res = run_gossip(g, proto, opts);
  ASSERT_TRUE(res.completed);
  const FreshnessStats f = freshness_of(proto, g.num_nodes(), res.rounds);
  ASSERT_TRUE(f.valid);
  EXPECT_EQ(f.informed_nodes, g.num_nodes());
  EXPECT_LE(f.mean_age, static_cast<double>(f.max_age));
  EXPECT_LE(f.max_age, res.rounds);
  // The source gained at round 0 => its age is the full run length.
  EXPECT_EQ(f.max_age, res.rounds);

  // Protocols without the last_gain_round hook report invalid stats.
  struct NoHook {};
  const FreshnessStats none = freshness_of(NoHook{}, 10, 5);
  EXPECT_FALSE(none.valid);
}

// Shrinker teeth: freeze the oracle's drift interpretation (a planted
// model bug), hand the divergence to the shrinker, and require a tiny
// counterexample that still carries an active drift schedule.
TEST(DynamicsShrinkTest, PlantedDriftBugShrinksToSmallCase) {
  TestCase tc;
  tc.proto = CheckProto::kPushPull;
  tc.num_nodes = 12;
  for (NodeId u = 0; u < tc.num_nodes; ++u)
    for (NodeId v = u + 1; v < tc.num_nodes; ++v)
      tc.edges.push_back(
          Edge{u, v, 3 + static_cast<Latency>((u + v) % 6)});
  tc.seed = 19;
  tc.dynamics.drift_step = 256;
  tc.dynamics.drift_bound = 4096;
  tc.dynamics.seed = 23;
  ASSERT_TRUE(case_valid(tc));

  oracle_detail::ModelBug bug;
  bug.freeze_drift = true;
  ASSERT_FALSE(run_differential(tc, bug).ok)
      << "planted drift bug was not observable";

  ShrinkStats stats;
  const TestCase minimal = shrink_case(
      tc, [&](const TestCase& c) { return !run_differential(c, bug).ok; },
      &stats);
  EXPECT_LE(minimal.num_nodes, 6u);
  EXPECT_TRUE(minimal.dynamics.drift_active())
      << "shrinker dropped the knob that makes the bug fire";
  EXPECT_FALSE(run_differential(minimal, bug).ok);
  EXPECT_GT(stats.accepted, 0u);
}

}  // namespace
}  // namespace latgossip
