// Shrinker behavior, including the end-to-end self-test the check
// framework is judged by: plant a known off-by-one model bug in the
// oracle (oracle_detail::ModelBug — a test-only knob), let the
// differential checker catch the divergence on a random case, and
// assert the shrinker reduces the counterexample to a handful of nodes
// while keeping the divergence alive.

#include <gtest/gtest.h>

#include "check/case_gen.h"
#include "check/differential.h"
#include "check/shrink.h"

namespace latgossip {
namespace {

// Pure-structure predicate: shrinking must reach the minimal case the
// predicate admits (5 nodes, one latency-4 edge) without ever proposing
// an invalid candidate (case_valid gates every acceptance).
TEST(Shrink, MinimizesStructuralPredicate) {
  Rng rng(11);
  CaseProfile profile;
  profile.min_nodes = 8;
  profile.max_nodes = 14;
  auto fails = [](const TestCase& tc) {
    if (tc.num_nodes < 5) return false;
    for (const Edge& e : tc.edges)
      if (e.latency >= 4) return true;
    return false;
  };
  int shrunk_runs = 0;
  for (int i = 0; i < 40 && shrunk_runs < 5; ++i) {
    const TestCase tc = random_case(rng, profile);
    if (!fails(tc)) continue;
    ShrinkStats stats;
    const TestCase small = shrink_case(tc, fails, &stats);
    ++shrunk_runs;
    EXPECT_TRUE(case_valid(small));
    EXPECT_TRUE(fails(small));
    EXPECT_EQ(small.num_nodes, 5u);
    // Minimal connected graph on 5 nodes: a 4-edge tree, exactly one of
    // them carrying the latency the predicate demands.
    EXPECT_EQ(small.edges.size(), 4u);
    EXPECT_GT(stats.accepted, 0u);
  }
  EXPECT_EQ(shrunk_runs, 5);
}

// The headline self-test: inject latency_bias = +1 into the oracle and
// shrink the resulting engine/oracle divergence. The minimal divergent
// case is a single informed pair exchanging once, so the shrinker must
// land at <= 6 nodes (it reaches 2 in practice).
TEST(Shrink, ReducesInjectedOracleBugToMinimalCounterexample) {
  oracle_detail::ModelBug bug;
  bug.latency_bias = 1;
  auto fails = [&bug](const TestCase& tc) {
    return !run_differential(tc, bug).ok;
  };

  Rng rng(0x5eed);
  CaseProfile profile;
  profile.min_nodes = 8;
  profile.max_nodes = 14;
  profile.composites = false;  // ModelBug only reaches the direct oracle

  TestCase failing;
  bool found = false;
  for (int i = 0; i < 50 && !found; ++i) {
    const TestCase tc = random_case(rng, profile);
    if (fails(tc)) {
      failing = tc;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no divergent case within 50 draws";

  ShrinkStats stats;
  const TestCase small = shrink_case(failing, fails, &stats);
  EXPECT_TRUE(case_valid(small));
  EXPECT_TRUE(fails(small)) << "shrinker lost the failure";
  EXPECT_LE(small.num_nodes, 6u) << describe(small);
  EXPECT_LE(small.edges.size(), 6u) << describe(small);
  EXPECT_LT(small.num_nodes, failing.num_nodes);
  EXPECT_GT(stats.accepted, 0u);
}

// The dropped-leg bug shrinks just as far.
TEST(Shrink, ReducesDroppedLegBug) {
  oracle_detail::ModelBug bug;
  bug.drop_initiator_leg = true;
  auto fails = [&bug](const TestCase& tc) {
    return !run_differential(tc, bug).ok;
  };

  Rng rng(0xfeed);
  CaseProfile profile;
  profile.min_nodes = 6;
  profile.max_nodes = 12;
  profile.composites = false;

  for (int i = 0; i < 50; ++i) {
    const TestCase tc = random_case(rng, profile);
    if (!fails(tc)) continue;
    const TestCase small = shrink_case(tc, fails);
    EXPECT_TRUE(fails(small));
    EXPECT_LE(small.num_nodes, 6u) << describe(small);
    return;
  }
  FAIL() << "no divergent case within 50 draws";
}

}  // namespace
}  // namespace latgossip
