// Tests for the push-only baseline (footnote 2: without pull, a star
// needs Ω(nD) time; bidirectional push-pull avoids it).

#include <gtest/gtest.h>

#include "core/push_only.h"
#include "core/push_pull.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "util/stats.h"

namespace latgossip {
namespace {

SimResult run_push_only(const WeightedGraph& g, NodeId source,
                        std::uint64_t seed, Round max_rounds = 500'000) {
  NetworkView view(g, false);
  PushOnlyBroadcast proto(view, source, Rng(seed));
  SimOptions opts;
  opts.max_rounds = max_rounds;
  return run_gossip(g, proto, opts);
}

TEST(PushOnly, CompletesOnClique) {
  const auto g = make_clique(16);
  const SimResult r = run_push_only(g, 0, 1);
  EXPECT_TRUE(r.completed);
}

TEST(PushOnly, CompletesOnPath) {
  const auto g = make_path(10);
  const SimResult r = run_push_only(g, 0, 2);
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.rounds, 9);
}

TEST(PushOnly, UninformedNodesStaySilent) {
  // Only informed nodes push: total activations are bounded by the sum
  // over nodes of (rounds - inform_round), far below n*rounds early on.
  const auto g = make_path(6);
  NetworkView view(g, false);
  PushOnlyBroadcast proto(view, 0, Rng(3));
  SimOptions opts;
  opts.max_rounds = 3;
  const SimResult r = run_gossip(g, proto, opts);
  // In 3 rounds at most nodes 0,1,2 can be informed; activations <= 6.
  EXPECT_LE(r.activations, 6u);
}

TEST(PushOnly, ResponseLegDiscarded) {
  // Two nodes, node 1 holds the rumor, node 0 initiates every round:
  // the response (pull) leg must be ignored, so 0 stays uninformed
  // until 1 pushes to it — but 1 is the only informed node, and *it*
  // pushes, so 0 is informed by 1's own initiation only.
  const auto g = build_graph(2, {{0, 1, 1}});
  NetworkView view(g, false);
  PushOnlyBroadcast proto(view, 1, Rng(5));
  SimOptions opts;
  opts.max_rounds = 10;
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_TRUE(r.completed);  // 1 pushes to its only neighbor
  EXPECT_TRUE(proto.informed(0));
}

TEST(PushOnly, StarFromHubIsCouponCollector) {
  // From the hub, push-only must hit every leaf by random pushes:
  // Θ(n log n) rounds — much more than push-pull's O(1)-ish (leaves
  // pull the hub immediately).
  const std::size_t n = 32;
  const auto g = make_star(n);
  Accumulator push_only_rounds, push_pull_rounds;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const SimResult po = run_push_only(g, 0, seed);
    ASSERT_TRUE(po.completed);
    push_only_rounds.add(static_cast<double>(po.rounds));

    NetworkView view(g, false);
    PushPullBroadcast pp(view, 0, Rng(seed));
    SimOptions opts;
    opts.max_rounds = 500'000;
    const SimResult r = run_gossip(g, pp, opts);
    ASSERT_TRUE(r.completed);
    push_pull_rounds.add(static_cast<double>(r.rounds));
  }
  EXPECT_GT(push_only_rounds.mean(), 5.0 * push_pull_rounds.mean());
}

TEST(PushOnly, WeightedStarShowsNDBehavior) {
  // Footnote 2's example: star with edge latency D. Push-only from the
  // hub pays ~(n ln n)/1 initiations each taking D to land; the last
  // leaf is informed around D + n ln n rounds; compare against
  // push-pull's ~D.
  const std::size_t n = 24;
  const Latency lat = 20;
  auto g = make_star(n);
  assign_uniform_latency(g, lat);
  const SimResult po = run_push_only(g, 0, 7);
  ASSERT_TRUE(po.completed);
  NetworkView view(g, false);
  PushPullBroadcast pp(view, 0, Rng(7));
  SimOptions opts;
  opts.max_rounds = 500'000;
  const SimResult ppr = run_gossip(g, pp, opts);
  ASSERT_TRUE(ppr.completed);
  EXPECT_LE(ppr.rounds, static_cast<Round>(lat) + 2);
  EXPECT_GT(po.rounds, 2 * ppr.rounds);
}

TEST(PushOnly, ValidatesSource) {
  const auto g = make_path(3);
  NetworkView view(g, false);
  EXPECT_THROW(PushOnlyBroadcast(view, 9, Rng(1)), std::invalid_argument);
}

TEST(PushOnly, PipelinedResponsesAllDiscarded) {
  // Latency-4 edge, node 1 informed, node 0 initiates every round while
  // responses are in flight: every response leg must be discarded
  // individually (regression for overlapping in-flight bookkeeping) —
  // but node 1's own pushes inform node 0.
  const auto g = build_graph(2, {{0, 1, 4}});
  NetworkView view(g, false);
  PushOnlyBroadcast proto(view, 1, Rng(11));
  SimOptions opts;
  opts.max_rounds = 50;
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_TRUE(r.completed);
}

SimResult run_pull_only(const WeightedGraph& g, NodeId source,
                        std::uint64_t seed, Round max_rounds = 500'000) {
  NetworkView view(g, false);
  PullOnlyBroadcast proto(view, source, Rng(seed));
  SimOptions opts;
  opts.max_rounds = max_rounds;
  return run_gossip(g, proto, opts);
}

TEST(PullOnly, CompletesOnClique) {
  const auto g = make_clique(16);
  const SimResult r = run_pull_only(g, 0, 1);
  EXPECT_TRUE(r.completed);
}

TEST(PullOnly, CompletesOnPath) {
  const auto g = make_path(8);
  const SimResult r = run_pull_only(g, 0, 2);
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.rounds, 7);
}

TEST(PullOnly, StarFromLeafIsFast) {
  // Every leaf pulls the hub: source leaf -> hub (pulled by hub? no —
  // the hub itself pulls a random leaf, then all leaves pull the hub).
  const auto g = make_star(32);
  const SimResult r = run_pull_only(g, 1, 3);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(r.rounds, 200);  // hub finds the informed leaf, leaves pull
}

TEST(PullOnly, UnsolicitedPushesIgnored) {
  // Node 1 informed but silent (pull-only informed nodes don't
  // initiate); node 0 must pull it — deliveries from 1's side never
  // happen spontaneously.
  const auto g = build_graph(2, {{0, 1, 3}});
  NetworkView view(g, false);
  PullOnlyBroadcast proto(view, 1, Rng(5));
  SimOptions opts;
  opts.max_rounds = 100;
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(proto.informed(0));
}

TEST(PullOnly, ValidatesSource) {
  const auto g = make_path(3);
  NetworkView view(g, false);
  EXPECT_THROW(PullOnlyBroadcast(view, 9, Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace latgossip
