// Tests for the greedy (2k-1)-spanner ablation baseline.

#include <gtest/gtest.h>

#include "analysis/spanner_check.h"
#include "core/spanner.h"
#include "graph/generators.h"
#include "graph/latency_models.h"

namespace latgossip {
namespace {

TEST(GreedySpanner, KEqualsOneKeepsShortestEdges) {
  // stretch bound 1: an edge is kept iff no strictly shorter path
  // exists; on a unit clique every edge's alternative path has length 2
  // > 1, so all edges stay.
  const auto g = make_clique(6);
  const auto s = build_greedy_spanner(g, 1);
  EXPECT_EQ(s.num_arcs(), g.num_edges());
}

TEST(GreedySpanner, StretchBoundHolds) {
  Rng gen(3);
  for (int trial = 0; trial < 4; ++trial) {
    auto g = make_erdos_renyi(36, 0.25, gen);
    assign_random_uniform_latency(g, 1, 20, gen);
    for (std::size_t k : {2u, 3u, 4u}) {
      const auto s = build_greedy_spanner(g, k);
      const auto stats = check_spanner_exact(g, s);
      EXPECT_TRUE(stats.connected);
      EXPECT_LE(stats.max_stretch, static_cast<double>(2 * k - 1) + 1e-9);
    }
  }
}

TEST(GreedySpanner, SparserThanOrComparableToBaswanaSen) {
  // Greedy is the sparsest-known construction; it should never be much
  // denser than Baswana-Sen at the same k.
  Rng gen(7);
  auto g = make_clique(48);
  assign_random_uniform_latency(g, 1, 40, gen);
  for (std::size_t k : {2u, 3u}) {
    const auto greedy = build_greedy_spanner(g, k);
    Rng rng(11 + k);
    const auto bs = build_baswana_sen_spanner(g, {k, 0}, rng);
    EXPECT_LE(greedy.num_arcs(), bs.num_arcs() + 48);
  }
}

TEST(GreedySpanner, TreeIsKeptEntirely) {
  auto g = make_binary_tree(31);
  Rng gen(13);
  assign_random_uniform_latency(g, 1, 9, gen);
  const auto s = build_greedy_spanner(g, 3);
  EXPECT_EQ(s.num_arcs(), g.num_edges());
}

TEST(GreedySpanner, DeterministicAndOrientedLowToHigh) {
  auto g = make_clique(12);
  Rng gen(17);
  assign_random_uniform_latency(g, 1, 30, gen);
  const auto a = build_greedy_spanner(g, 2);
  const auto b = build_greedy_spanner(g, 2);
  EXPECT_EQ(a.num_arcs(), b.num_arcs());
  for (NodeId u = 0; u < a.num_nodes(); ++u)
    for (const Arc& arc : a.out_arcs(u)) EXPECT_LT(u, arc.to);
}

TEST(GreedySpanner, ValidatesK) {
  const auto g = make_path(3);
  EXPECT_THROW(build_greedy_spanner(g, 0), std::invalid_argument);
}

}  // namespace
}  // namespace latgossip
