// Tests for the persistent work-stealing trial pool (sim/pool.h) and
// the per-thread reusable trial workspaces (sim/workspace.h): every
// task runs exactly once under chunked claims and stealing, exceptions
// propagate and leave the pool usable, nested batches degrade to
// sequential, and workspace reuse is bit-invisible in results.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/push_pull.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "obs/recorder.h"
#include "sim/engine.h"
#include "sim/parallel.h"
#include "sim/pool.h"

namespace latgossip {
namespace {

WeightedGraph test_graph() {
  Rng grng(7);
  auto g = make_erdos_renyi(64, 0.15, grng);
  assign_random_uniform_latency(g, 1, 6, grng);
  return g;
}

TEST(TrialPool, RunsEveryTaskExactlyOnce) {
  TrialPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  std::atomic<std::size_t> bad_worker{0};
  pool.run(kTasks, 4, [&](std::size_t task, std::size_t worker) {
    if (worker >= 4) bad_worker.fetch_add(1);
    hits[task].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t t = 0; t < kTasks; ++t)
    ASSERT_EQ(hits[t].load(), 1) << "task " << t;
  EXPECT_EQ(bad_worker.load(), 0u);
}

TEST(TrialPool, GrowsOnDemandFromZeroWorkers) {
  TrialPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  std::atomic<std::size_t> ran{0};
  pool.run(10, 3, [&](std::size_t, std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10u);
  EXPECT_EQ(pool.workers(), 3u);
  // A smaller batch must not shrink the pool.
  pool.run(2, 1, [&](std::size_t, std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 12u);
  EXPECT_EQ(pool.workers(), 3u);
}

TEST(TrialPool, PropagatesExceptionsAndStaysUsable) {
  TrialPool pool(3);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(pool.run(64, 3,
                        [&](std::size_t task, std::size_t) {
                          if (task == 17) throw std::runtime_error("boom");
                          ran.fetch_add(1);
                        }),
               std::runtime_error);
  // Tasks claimed after the failure are skipped, never run twice.
  EXPECT_LE(ran.load(), 63u);
  ran.store(0);
  pool.run(64, 3, [&](std::size_t, std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64u);
}

TEST(TrialPool, OnWorkerThreadFlag) {
  EXPECT_FALSE(TrialPool::on_worker_thread());
  TrialPool pool(2);
  std::atomic<int> on_worker{0};
  pool.run(8, 2, [&](std::size_t, std::size_t) {
    if (TrialPool::on_worker_thread()) on_worker.fetch_add(1);
  });
  EXPECT_EQ(on_worker.load(), 8);
  EXPECT_FALSE(TrialPool::on_worker_thread());
}

TEST(TrialPool, NestedBatchesDegradeToSequential) {
  // A trial whose body calls run_trials again must not wait on the pool
  // that is running it: resolve_threads() returns 1 on pool workers.
  std::atomic<int> oversubscribed{0};
  const WeightedGraph g = test_graph();
  const TrialFn inner = [&g](std::size_t, Rng rng) {
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, rng);
    return run_gossip(g, proto);
  };
  const TrialFn outer = [&](std::size_t, Rng rng) {
    if (TrialPool::on_worker_thread() && resolve_threads(8) != 1)
      oversubscribed.fetch_add(1);
    const TrialAggregate inner_agg = run_trials(3, 8, rng(), inner);
    SimResult r;
    r.rounds = static_cast<Round>(inner_agg.rounds.mean());
    r.completed = inner_agg.all_completed();
    return r;
  };
  const TrialAggregate par = run_trials(6, 4, 21, outer);
  EXPECT_EQ(oversubscribed.load(), 0);
  // And nesting does not disturb determinism: the sequential outer run
  // (whose nested batches may themselves go parallel) agrees exactly.
  const TrialAggregate seq = run_trials(6, 1, 21, outer);
  EXPECT_EQ(par.trials, seq.trials);
  EXPECT_TRUE(par.all_completed());
}

TEST(TrialPool, EnvOverrideControlsDefaultConcurrency) {
  // detail::read_default_concurrency is the uncached computation behind
  // default_concurrency() (which latches its first result).
  ASSERT_EQ(setenv("LATGOSSIP_THREADS", "5", 1), 0);
  EXPECT_EQ(detail::read_default_concurrency(), 5u);
  ASSERT_EQ(setenv("LATGOSSIP_THREADS", "0", 1), 0);
  EXPECT_GE(detail::read_default_concurrency(), 1u);  // ignored: not > 0
  ASSERT_EQ(setenv("LATGOSSIP_THREADS", "many", 1), 0);
  EXPECT_GE(detail::read_default_concurrency(), 1u);  // ignored: not a number
  ASSERT_EQ(unsetenv("LATGOSSIP_THREADS"), 0);
  EXPECT_GE(detail::read_default_concurrency(), 1u);
  EXPECT_GE(default_concurrency(), 1u);
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_GE(resolve_threads(0), 1u);
}

// --- Workspace reuse -------------------------------------------------------

TEST(TrialPoolWorkspace, SlotConstructsOncePerType) {
  TrialWorkspace ws;
  EXPECT_FALSE(ws.has_slot<int>());
  int& a = ws.slot<int>(41);
  EXPECT_EQ(a, 41);
  a = 7;
  // Second request returns the same object; construction args ignored.
  EXPECT_EQ(&ws.slot<int>(99), &a);
  EXPECT_EQ(ws.slot<int>(), 7);
  EXPECT_TRUE(ws.has_slot<int>());
  EXPECT_EQ(ws.find_slot<int>(), &a);
  EXPECT_EQ(ws.find_slot<double>(), nullptr);
  EXPECT_EQ(ws.num_slots(), 1u);
}

TEST(TrialPoolWorkspace, DepthScopeGivesDistinctWorkspaces) {
  TrialWorkspace& outer = trial_workspace();
  {
    const detail::TrialDepthScope scope;
    TrialWorkspace& inner = trial_workspace();
    EXPECT_NE(&outer, &inner);
    {
      const detail::TrialDepthScope scope2;
      EXPECT_NE(&trial_workspace(), &outer);
      EXPECT_NE(&trial_workspace(), &inner);
    }
    EXPECT_EQ(&trial_workspace(), &inner);
  }
  EXPECT_EQ(&trial_workspace(), &outer);
}

struct Probe {
  static std::atomic<int> constructions;
  int trials = 0;
  Probe() { constructions.fetch_add(1); }
};
std::atomic<int> Probe::constructions{0};

TEST(TrialPoolWorkspace, WorkersRecycleWorkspacesAcrossCalls) {
  // Ten separate run_trials calls at two threads: the probe parked in
  // each worker's workspace is constructed at most once per worker
  // thread — ever — while the trials keep arriving. This is the
  // cross-call recycling the persistent pool exists for (fresh threads
  // per call would construct per call).
  Probe::constructions.store(0);
  std::atomic<int> probe_trials{0};
  for (int call = 0; call < 10; ++call) {
    const TrialAggregate agg = run_trials(
        8, 2, 1234 + call, [&](std::size_t, Rng, TrialWorkspace& ws) {
          Probe& probe = ws.slot<Probe>();
          ++probe.trials;
          probe_trials.fetch_add(1);
          return SimResult{};
        });
    ASSERT_EQ(agg.trials.size(), 8u);
  }
  // Every trial went through a probe, but at most one probe exists per
  // worker thread — not per call, not per trial.
  EXPECT_EQ(probe_trials.load(), 80);
  EXPECT_LE(Probe::constructions.load(), 2);
  EXPECT_GE(Probe::constructions.load(), 1);
}

TrialWsFn reusing_broadcast_trial(const WeightedGraph& g) {
  return [&g](std::size_t, Rng rng, TrialWorkspace& ws) {
    NetworkView view(g, false);
    auto& proto = ws.slot<PushPullBroadcast>(view, NodeId{0}, rng);
    proto.reset(view, 0, rng);
    SimOptions opts;
    opts.max_rounds = 1'000'000;
    opts.workspace = &ws;
    return run_gossip(g, proto, opts);
  };
}

TEST(TrialPoolWorkspace, ReuseIsBitInvisibleAcrossThreadCounts) {
  // The reset contract, proven end to end: trials that recycle the
  // protocol and the engine's calendar queue out of their worker's
  // workspace produce results bit-identical to fresh-state trials, at
  // every thread count (different counts = different reuse patterns).
  const WeightedGraph g = test_graph();
  const TrialFn fresh = [&g](std::size_t, Rng rng) {
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, rng);
    SimOptions opts;
    opts.max_rounds = 1'000'000;
    return run_gossip(g, proto, opts);
  };
  const TrialAggregate baseline = run_trials(24, 1, 42, fresh);
  const auto reusing = reusing_broadcast_trial(g);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const TrialAggregate agg = run_trials(24, threads, 42, reusing);
    EXPECT_EQ(baseline.trials, agg.trials) << "threads=" << threads;
    EXPECT_EQ(baseline.rounds.mean(), agg.rounds.mean());
    EXPECT_EQ(baseline.rounds.variance(), agg.rounds.variance());
  }
}

TEST(TrialPoolWorkspace, RecordingFingerprintsUnchangedByReuse) {
  // Event-granular check: the full activation/delivery event stream —
  // not just the summary results — is unchanged by workspace reuse.
  const WeightedGraph g = test_graph();
  const TrialFn fresh = [&g](std::size_t, Rng rng) {
    EventRecorder rec;
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, rng);
    SimOptions opts;
    opts.recorder = &rec;
    SimResult r = run_gossip(g, proto, opts);
    r.fingerprint = rec.fingerprint();
    return r;
  };
  const TrialWsFn reusing = [&g](std::size_t, Rng rng, TrialWorkspace& ws) {
    EventRecorder rec;
    NetworkView view(g, false);
    auto& proto = ws.slot<PushPullBroadcast>(view, NodeId{0}, rng);
    proto.reset(view, 0, rng);
    SimOptions opts;
    opts.recorder = &rec;
    opts.workspace = &ws;
    SimResult r = run_gossip(g, proto, opts);
    r.fingerprint = rec.fingerprint();
    return r;
  };
  const TrialAggregate baseline = run_trials(16, 1, 42, fresh);
  ASSERT_NE(baseline.fingerprint, 0u);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const TrialAggregate agg = run_trials(16, threads, 42, reusing);
    EXPECT_EQ(baseline.fingerprint, agg.fingerprint) << "threads=" << threads;
    EXPECT_EQ(baseline.trials, agg.trials);
  }
}

TEST(TrialPoolWorkspace, SteadyStateSnapshotArenaIsFlat) {
  // Sequential rumor-set sweep with a workspace-parked PushPullGossip:
  // after a warm-up batch, re-running the identical batch allocates no
  // new snapshot blocks and constructs no new workspace slots — the
  // "steady-state trials allocate nothing" claim, measured through the
  // arena's own instrumentation.
  const WeightedGraph g = test_graph();
  const TrialWsFn fn = [&g](std::size_t, Rng rng, TrialWorkspace& ws) {
    NetworkView view(g, false);
    auto& proto = ws.slot<PushPullGossip>(
        view, GossipGoal::kAllToAll, NodeId{0},
        PushPullGossip::own_id_rumors(view.num_nodes()), rng);
    proto.reset_own_id(view, GossipGoal::kAllToAll, 0, rng);
    SimOptions opts;
    opts.workspace = &ws;
    return run_gossip(g, proto, opts);
  };
  const TrialAggregate warm = run_trials(4, 1, 9, fn);
  TrialWorkspace& ws = trial_workspace();
  const PushPullGossip* proto = ws.find_slot<PushPullGossip>();
  ASSERT_NE(proto, nullptr);
  const std::size_t blocks_after_warm = proto->snapshot_arena().allocated_blocks();
  const std::size_t slots_after_warm = ws.num_slots();
  EXPECT_GT(blocks_after_warm, 0u);

  const TrialAggregate again = run_trials(4, 1, 9, fn);
  EXPECT_EQ(proto->snapshot_arena().allocated_blocks(), blocks_after_warm);
  EXPECT_EQ(ws.num_slots(), slots_after_warm);
  // And reuse changed nothing observable.
  EXPECT_EQ(warm.trials, again.trials);
}

TEST(TrialPoolWorkspace, ProtocolResetMatchesFreshConstruction) {
  const WeightedGraph g = test_graph();
  const NetworkView view(g, false);
  // Broadcast: run, reset, run again with the same rng — identical.
  PushPullBroadcast fresh(view, 3, Rng(11));
  const SimResult first = run_gossip(g, fresh);
  PushPullBroadcast reused(view, 5, Rng(99));
  (void)run_gossip(g, reused);  // dirty it
  reused.reset(view, 3, Rng(11));
  EXPECT_EQ(run_gossip(g, reused), first);
  EXPECT_THROW(reused.reset(view, 1000, Rng(1)), std::invalid_argument);

  // Rumor-set gossip: same, with the snapshot arena recycled in place.
  PushPullGossip gfresh(view, GossipGoal::kAllToAll, 0,
                        PushPullGossip::own_id_rumors(g.num_nodes()), Rng(13));
  const SimResult gfirst = run_gossip(g, gfresh);
  PushPullGossip greused(view, GossipGoal::kAllToAll, 0,
                         PushPullGossip::own_id_rumors(g.num_nodes()), Rng(7));
  (void)run_gossip(g, greused);
  greused.reset_own_id(view, GossipGoal::kAllToAll, 0, Rng(13));
  EXPECT_EQ(run_gossip(g, greused), gfirst);

  // Biased broadcast (known latencies): reset matches fresh as well.
  const NetworkView known(g, true);
  BiasedPushPullBroadcast bfresh(known, 2, 1.0, Rng(17));
  const SimResult bfirst = run_gossip(g, bfresh);
  BiasedPushPullBroadcast breused(known, 0, 1.0, Rng(5));
  (void)run_gossip(g, breused);
  breused.reset(known, 2, 1.0, Rng(17));
  EXPECT_EQ(run_gossip(g, breused), bfirst);
}

}  // namespace
}  // namespace latgossip
