// Tests for the copy-on-write snapshot arena (util/snapshot.h).

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "util/bitset.h"
#include "util/snapshot.h"

namespace latgossip {
namespace {

Bitset bits_with(std::size_t size, std::initializer_list<std::size_t> set) {
  Bitset b(size);
  for (std::size_t i : set) b.set(i);
  return b;
}

TEST(SnapshotArena, CaptureCopiesContentsAndCachesCount) {
  SnapshotArena arena(100);
  const Bitset src = bits_with(100, {0, 17, 63, 64, 99});
  const SnapshotRef ref = arena.capture(src);
  ASSERT_TRUE(ref);
  EXPECT_TRUE(ref.bits() == src);
  EXPECT_EQ(ref.count(), 5u);
  EXPECT_EQ(arena.allocated_blocks(), 1u);
  EXPECT_EQ(arena.captures(), 1u);
}

TEST(SnapshotArena, CaptureWithKnownCountSkipsRecount) {
  SnapshotArena arena(64);
  const Bitset src = bits_with(64, {1, 2, 3});
  const SnapshotRef ref = arena.capture(src, 3);
  EXPECT_TRUE(ref.bits() == src);
  EXPECT_EQ(ref.count(), 3u);
}

TEST(SnapshotArena, SnapshotIsImmutableAfterSourceMutates) {
  SnapshotArena arena(32);
  Bitset src = bits_with(32, {4});
  const SnapshotRef ref = arena.capture(src);
  src.set(5);
  EXPECT_FALSE(ref.bits().test(5));
  EXPECT_EQ(ref.count(), 1u);
}

TEST(SnapshotArena, RefCopyBumpsSharingAndMoveSteals) {
  SnapshotArena arena(16);
  SnapshotRef a = arena.capture(bits_with(16, {7}));
  const SnapshotRef b = a;  // copy: same block
  EXPECT_EQ(a.id(), b.id());
  const SnapshotRef c = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): asserting the move
  EXPECT_EQ(c.id(), b.id());
  EXPECT_EQ(arena.allocated_blocks(), 1u);
}

TEST(SnapshotArena, LastRefRecyclesBlockThroughPool) {
  SnapshotArena arena(16);
  const void* first_id = nullptr;
  {
    const SnapshotRef ref = arena.capture(bits_with(16, {1}));
    first_id = ref.id();
    EXPECT_EQ(arena.pooled_blocks(), 0u);
  }
  EXPECT_EQ(arena.pooled_blocks(), 1u);
  // The next capture reuses the recycled block: no new allocation.
  const SnapshotRef again = arena.capture(bits_with(16, {2, 3}));
  EXPECT_EQ(again.id(), first_id);
  EXPECT_EQ(again.count(), 2u);
  EXPECT_EQ(arena.allocated_blocks(), 1u);
  EXPECT_EQ(arena.pooled_blocks(), 0u);
}

TEST(SnapshotArena, AllocationStopsOncePoolCoversInflightPeak) {
  SnapshotArena arena(64);
  const Bitset src = bits_with(64, {0});
  // Hold at most 3 refs at a time, over many capture generations.
  for (int round = 0; round < 50; ++round) {
    std::vector<SnapshotRef> held;
    for (int i = 0; i < 3; ++i) held.push_back(arena.capture(src));
  }
  EXPECT_EQ(arena.allocated_blocks(), 3u);
  EXPECT_EQ(arena.captures(), 150u);
}

TEST(SnapshotCache, SharedReturnsSameBlockUntilInvalidated) {
  SnapshotCache cache(4, 32);
  Bitset state = bits_with(32, {0, 1});
  const SnapshotRef a = cache.shared(0, state);
  const SnapshotRef b = cache.shared(0, state);
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(cache.arena().captures(), 1u);

  state.set(2);
  cache.invalidate(0);
  const SnapshotRef c = cache.shared(0, state, 3);
  EXPECT_NE(c.id(), a.id());
  EXPECT_EQ(c.count(), 3u);
  EXPECT_TRUE(c.bits().test(2));
  // The old snapshot is untouched by the re-capture.
  EXPECT_FALSE(a.bits().test(2));
}

TEST(SnapshotCache, SlotsAreIndependentPerNode) {
  SnapshotCache cache(2, 16);
  const Bitset s0 = bits_with(16, {0});
  const Bitset s1 = bits_with(16, {1});
  const SnapshotRef a = cache.shared(0, s0);
  const SnapshotRef b = cache.shared(1, s1);
  EXPECT_NE(a.id(), b.id());
  cache.invalidate(0);
  const SnapshotRef b2 = cache.shared(1, s1);
  EXPECT_EQ(b2.id(), b.id());  // node 1's slot survived node 0's invalidate
}

TEST(SnapshotCache, FreshAlwaysDeepCopies) {
  SnapshotCache cache(1, 16);
  const Bitset s = bits_with(16, {3});
  const SnapshotRef shared1 = cache.shared(0, s);
  const SnapshotRef f1 = cache.fresh(s);
  const SnapshotRef f2 = cache.fresh(s, 1);
  EXPECT_NE(f1.id(), shared1.id());
  EXPECT_NE(f2.id(), f1.id());
  EXPECT_TRUE(f1.bits() == s);
  EXPECT_EQ(f2.count(), 1u);
  // fresh() never touches the cached slot.
  const SnapshotRef shared2 = cache.shared(0, s);
  EXPECT_EQ(shared2.id(), shared1.id());
}

TEST(SnapshotCache, InvalidateWithSoleReferenceRefillsInPlace) {
  // When the cache holds the only reference, invalidate() keeps the block
  // and the next shared() overwrites it in place — a quiet node reuses one
  // stable block forever instead of cycling the pool.
  SnapshotCache cache(1, 16);
  Bitset state = bits_with(16, {0});
  const void* const id = cache.shared(0, state).id();
  cache.invalidate(0);
  EXPECT_EQ(cache.arena().pooled_blocks(), 0u);  // block kept, not recycled

  state.set(5);
  const SnapshotRef refreshed = cache.shared(0, state, 2);
  EXPECT_EQ(refreshed.id(), id);  // same block, new contents
  EXPECT_TRUE(refreshed.bits().test(5));
  EXPECT_EQ(refreshed.count(), 2u);
  // The refill performed a real copy: it counts as a capture.
  EXPECT_EQ(cache.arena().captures(), 2u);
  EXPECT_EQ(cache.arena().allocated_blocks(), 1u);
}

TEST(SnapshotCache, InvalidateWithInflightReferenceDropsTheBlock) {
  // When payload refs are still in flight, invalidate() must drop the
  // slot instead: the in-flight view is immutable, so the next shared()
  // copies into a different block.
  SnapshotCache cache(1, 16);
  Bitset state = bits_with(16, {0});
  SnapshotRef inflight = cache.shared(0, state);
  cache.invalidate(0);

  state.set(5);
  const SnapshotRef refreshed = cache.shared(0, state);
  EXPECT_NE(refreshed.id(), inflight.id());
  EXPECT_FALSE(inflight.bits().test(5));  // old view untouched
  EXPECT_TRUE(refreshed.bits().test(5));

  inflight.reset();  // last external ref dies -> block recycles
  EXPECT_EQ(cache.arena().pooled_blocks(), 1u);
}

}  // namespace
}  // namespace latgossip
