// Tests for the deterministic parallel trial runner: bit-identical
// aggregates across thread counts, seed-splitting independence, and
// error propagation.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "core/push_pull.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "obs/recorder.h"
#include "sim/engine.h"
#include "sim/parallel.h"

namespace latgossip {
namespace {

WeightedGraph test_graph() {
  Rng grng(7);
  auto g = make_erdos_renyi(64, 0.15, grng);
  assign_random_uniform_latency(g, 1, 6, grng);
  return g;
}

TrialFn push_pull_trial(const WeightedGraph& g) {
  return [&g](std::size_t, Rng rng) {
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, rng);
    SimOptions opts;
    opts.max_rounds = 1'000'000;
    return run_gossip(g, proto, opts);
  };
}

TEST(RunTrials, BitIdenticalAcrossThreadCounts) {
  const WeightedGraph g = test_graph();
  const auto fn = push_pull_trial(g);
  const TrialAggregate one = run_trials(24, 1, 42, fn);
  const TrialAggregate two = run_trials(24, 2, 42, fn);
  const TrialAggregate eight = run_trials(24, 8, 42, fn);

  ASSERT_EQ(one.trials.size(), 24u);
  EXPECT_EQ(one.trials, two.trials);
  EXPECT_EQ(one.trials, eight.trials);
  for (const TrialAggregate* other : {&two, &eight}) {
    EXPECT_EQ(one.num_completed, other->num_completed);
    // Aggregation runs in trial order after the pool drains, so even the
    // floating-point accumulators match bit for bit.
    EXPECT_EQ(one.rounds.mean(), other->rounds.mean());
    EXPECT_EQ(one.rounds.variance(), other->rounds.variance());
    EXPECT_EQ(one.rounds.min(), other->rounds.min());
    EXPECT_EQ(one.rounds.max(), other->rounds.max());
    EXPECT_EQ(one.activations.mean(), other->activations.mean());
    EXPECT_EQ(one.payload_bits.mean(), other->payload_bits.mean());
    EXPECT_EQ(one.messages_delivered.mean(),
              other->messages_delivered.mean());
  }
  EXPECT_TRUE(one.all_completed());
}

TEST(RunTrials, RecordingFingerprintsIdenticalAcrossThreadCounts) {
  // With a per-trial recorder attached (dynamic-hook path), the merged
  // event-stream digest must still be bit-identical for any worker
  // count — the event streams themselves are deterministic per trial.
  const WeightedGraph g = test_graph();
  const TrialFn fn = [&g](std::size_t, Rng rng) {
    EventRecorder rec;
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, rng);
    SimOptions opts;
    opts.recorder = &rec;
    opts.max_rounds = 1'000'000;
    SimResult r = run_gossip(g, proto, opts);
    r.fingerprint = rec.fingerprint();
    return r;
  };
  const TrialAggregate one = run_trials(16, 1, 42, fn);
  const TrialAggregate two = run_trials(16, 2, 42, fn);
  const TrialAggregate eight = run_trials(16, 8, 42, fn);
  EXPECT_NE(one.fingerprint, 0u);
  EXPECT_EQ(one.fingerprint, two.fingerprint);
  EXPECT_EQ(one.fingerprint, eight.fingerprint);
  EXPECT_EQ(one.trials, two.trials);
  EXPECT_EQ(one.trials, eight.trials);
  // And the aggregate really is the commutative merge of the trials.
  std::uint64_t manual = 0;
  for (const SimResult& r : one.trials)
    manual = fingerprint_merge_digests(manual, r.fingerprint);
  EXPECT_EQ(manual, one.fingerprint);
}

TEST(RunTrials, TrialsSeeIndependentSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t t = 0; t < 1000; ++t) seeds.insert(trial_seed(99, t));
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(trial_seed(1, 0), trial_seed(2, 0));
  // Trial 0 must not leak the batch seed through unmixed.
  EXPECT_NE(trial_seed(123, 0), 123u);
}

TEST(RunTrials, SeedChangesResults) {
  const WeightedGraph g = test_graph();
  const auto fn = push_pull_trial(g);
  const TrialAggregate a = run_trials(8, 2, 1, fn);
  const TrialAggregate b = run_trials(8, 2, 2, fn);
  EXPECT_NE(a.trials, b.trials);
}

TEST(RunTrials, ZeroTrialsIsEmpty) {
  const TrialAggregate agg =
      run_trials(0, 4, 7, [](std::size_t, Rng) { return SimResult{}; });
  EXPECT_TRUE(agg.trials.empty());
  EXPECT_EQ(agg.rounds.count(), 0u);
  EXPECT_TRUE(agg.all_completed());
}

TEST(RunTrials, ZeroThreadsMeansHardwareConcurrency) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(3), 3u);
  const WeightedGraph g = test_graph();
  const TrialAggregate hw = run_trials(4, 0, 5, push_pull_trial(g));
  const TrialAggregate one = run_trials(4, 1, 5, push_pull_trial(g));
  EXPECT_EQ(hw.trials, one.trials);
}

TEST(RunTrials, PropagatesTrialExceptions) {
  auto fn = [](std::size_t t, Rng) -> SimResult {
    if (t == 3) throw std::runtime_error("trial blew up");
    return SimResult{};
  };
  EXPECT_THROW(run_trials(8, 4, 11, fn), std::runtime_error);
  EXPECT_THROW(run_trials(8, 1, 11, fn), std::runtime_error);
}

TEST(RunTrials, AggregatesMatchManualLoop) {
  const WeightedGraph g = test_graph();
  const auto fn = push_pull_trial(g);
  const TrialAggregate agg = run_trials(6, 3, 17, fn);
  Accumulator manual;
  for (std::size_t t = 0; t < 6; ++t) {
    const SimResult r = fn(t, Rng(trial_seed(17, t)));
    EXPECT_EQ(r, agg.trials[t]);
    manual.add(static_cast<double>(r.rounds));
  }
  EXPECT_EQ(manual.mean(), agg.rounds.mean());
  EXPECT_EQ(manual.stddev(), agg.rounds.stddev());
}

}  // namespace
}  // namespace latgossip
