// Integration tests: whole-pipeline runs combining graph construction,
// analysis, and the dissemination algorithms, mirroring how the bench
// harnesses use the library.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/conductance.h"
#include "analysis/distance.h"
#include "analysis/spanner_check.h"
#include "core/eid.h"
#include "core/push_pull.h"
#include "core/rr_broadcast.h"
#include "core/tk_schedule.h"
#include "core/unified.h"
#include "graph/gadgets.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"

namespace latgossip {
namespace {

TEST(Integration, PushPullWithinTheorem12Bound) {
  // Theorem 12: broadcast in O((ℓ*/φ*) log n). Check the measured time
  // against C * (ℓ*/φ*) * log n for a generous constant C on a
  // low-conductance weighted family.
  const auto g = make_ring_of_cliques(4, 4, 8);
  const auto wc = weighted_conductance_exact(g);
  ASSERT_GT(wc.phi_star, 0.0);
  const double bound = static_cast<double>(wc.ell_star) / wc.phi_star *
                       std::log2(static_cast<double>(g.num_nodes()));
  double worst = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, Rng(seed));
    SimOptions opts;
    opts.max_rounds = 1'000'000;
    const SimResult r = run_gossip(g, proto, opts);
    ASSERT_TRUE(r.completed);
    worst = std::max(worst, static_cast<double>(r.rounds));
  }
  EXPECT_LE(worst, 8.0 * bound);
}

TEST(Integration, EidMatchesTkScheduleResults) {
  // Both known-latency algorithms must converge to identical (full)
  // rumor sets on the same weighted graph.
  auto g = make_grid(3, 5);
  Rng latr(3);
  assign_random_uniform_latency(g, 1, 4, latr);
  const Latency d = weighted_diameter(g);

  Rng rng(5);
  EidOptions opts;
  opts.diameter_estimate = d;
  const EidOutcome eid = run_eid(g, opts, own_id_rumors(15), rng);
  const TkOutcome tk = run_tk_schedule(g, d, own_id_rumors(15));
  ASSERT_TRUE(eid.all_to_all);
  ASSERT_TRUE(tk.all_to_all);
  for (NodeId v = 0; v < 15; ++v) EXPECT_TRUE(eid.rumors[v] == tk.rumors[v]);
}

TEST(Integration, Theorem8RingHasAdvertisedShape) {
  // D = Θ(1/φ_ℓ) and φ* = φ_ℓ (Lemmas 9-11) on a small ring instance.
  // Lemma 11 needs ell < s^2 strictly for the critical latency to be the
  // cross latency; s = 4 and ell = 9 < 16 satisfies it.
  Rng rng(7);
  const auto ring = make_layered_ring(6, 4, 9, rng);
  const auto wc = weighted_conductance_exact(ring.graph);
  EXPECT_EQ(wc.ell_star, 9);  // the cross latency is critical
  const Latency d = weighted_diameter(ring.graph);
  const double phi_ell = wc.phi_star;
  ASSERT_GT(phi_ell, 0.0);
  // D within a small constant of 1/phi_ell.
  EXPECT_GE(static_cast<double>(d) * phi_ell, 0.2);
  EXPECT_LE(static_cast<double>(d) * phi_ell, 5.0);
}

TEST(Integration, SpannerPipelineOnGeometricGraph) {
  // Geometric graph with distance latencies -> spanner -> RR broadcast:
  // the full known-latency pipeline on a "sensor network" input.
  Rng rng(11);
  std::vector<std::pair<double, double>> coords;
  auto g = make_random_geometric(40, 0.35, rng, &coords);
  assign_distance_latency(g, coords, 20.0);

  Rng srng(13);
  const auto spanner = build_baswana_sen_spanner(g, {0, 0}, srng);
  Rng check_rng(17);
  const auto stats = check_spanner_sampled(g, spanner, 10, check_rng);
  EXPECT_TRUE(stats.connected);
  std::size_t logn = 0;
  while ((1u << logn) < 40u) ++logn;
  EXPECT_LE(stats.max_stretch, static_cast<double>(2 * logn - 1) + 1e-9);

  const Latency d = weighted_diameter(g);
  NetworkView view(g, true);
  RRBroadcast rr(view, spanner,
                 d * static_cast<Latency>(2 * logn - 1),
                 own_id_rumors(40));
  SimOptions opts;
  opts.max_rounds = rr.budget() + d * static_cast<Latency>(2 * logn) + 4;
  run_gossip(g, rr, opts);
  EXPECT_TRUE(all_sets_full(rr.rumors()));
}

TEST(Integration, UnifiedAgreesWithBranchRuns) {
  auto g = make_dumbbell(4, 2, 6);
  Rng rng(19);
  UnifiedOptions opts;
  opts.latencies_known = true;
  const UnifiedOutcome out = run_unified(g, opts, rng);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.unified_rounds,
            std::min(out.push_pull_completed ? out.push_pull_rounds
                                             : out.spanner_rounds,
                     out.spanner_completed ? out.spanner_rounds
                                           : out.push_pull_rounds));
}

TEST(Integration, Theorem7GadgetConductanceMatchesPhi) {
  // On a small Theorem 7 instance the exact weighted conductance at
  // level ℓ should be Θ(φ) (Claim 21 / the Theorem 7 proof).
  Rng rng(23);
  const auto net = make_theorem7_network(10, 2, 0.4, rng);
  const auto wc = weighted_conductance_exact(net.gadget.graph, 22);
  double phi_ell = 0.0;
  for (std::size_t i = 0; i < wc.levels.size(); ++i)
    if (wc.levels[i] == 2) phi_ell = wc.phi[i];
  EXPECT_GT(phi_ell, 0.4 / 8.0);
  EXPECT_LT(phi_ell, 0.4 * 4.0);
}

TEST(Integration, AllAlgorithmsAgreeOnFinalRumors) {
  // Push-pull (to completion), flooding, General EID and Path Discovery
  // all end with full rumor sets on the same connected weighted graph.
  Rng gen(29);
  auto g = make_erdos_renyi(12, 0.4, gen);
  assign_two_level_latency(g, 1, 6, 0.5, gen);

  {
    NetworkView view(g, false);
    PushPullGossip pp(view, GossipGoal::kAllToAll, 0,
                      PushPullGossip::own_id_rumors(12), Rng(31));
    SimOptions opts;
    opts.max_rounds = 500'000;
    ASSERT_TRUE(run_gossip(g, pp, opts).completed);
    EXPECT_TRUE(all_sets_full(pp.rumors()));
  }
  {
    Rng rng(37);
    const GeneralEidOutcome eid = run_general_eid(g, 0, rng);
    ASSERT_TRUE(eid.success);
    EXPECT_TRUE(all_sets_full(eid.rumors));
  }
  {
    const PathDiscoveryOutcome pd = run_path_discovery(g);
    ASSERT_TRUE(pd.success);
    EXPECT_TRUE(all_sets_full(pd.rumors));
  }
}

}  // namespace
}  // namespace latgossip
