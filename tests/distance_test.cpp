// Tests for shortest paths, eccentricity and diameters.

#include <gtest/gtest.h>

#include "analysis/distance.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/latency_models.h"

namespace latgossip {
namespace {

TEST(Dijkstra, WeightedPath) {
  auto g = make_path(4);
  g.set_latency(*g.find_edge(0, 1), 2);
  g.set_latency(*g.find_edge(1, 2), 3);
  g.set_latency(*g.find_edge(2, 3), 4);
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 2);
  EXPECT_EQ(d[2], 5);
  EXPECT_EQ(d[3], 9);
}

TEST(Dijkstra, PrefersCheapDetour) {
  const auto g = build_graph(3, {{0, 2, 10}, {0, 1, 1}, {1, 2, 1}});
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[2], 2);
}

TEST(Dijkstra, UnreachableSentinel) {
  const auto g = build_graph(3, {{0, 1, 1}});
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(Dijkstra, CappedIgnoresSlowEdges) {
  const auto g = build_graph(3, {{0, 1, 5}, {1, 2, 2}});
  const auto d = dijkstra_capped(g, 0, 4);
  EXPECT_EQ(d[1], kUnreachable);  // 5 > cap
  EXPECT_EQ(d[2], kUnreachable);
  const auto d2 = dijkstra_capped(g, 1, 4);
  EXPECT_EQ(d2[2], 2);
}

TEST(Dijkstra, DirectedRespectsOrientation) {
  DirectedGraph d(3);
  d.add_arc(0, 1, 4);
  d.add_arc(1, 2, 1);
  const auto dist = dijkstra_directed(d, 0);
  EXPECT_EQ(dist[2], 5);
  const auto back = dijkstra_directed(d, 2);
  EXPECT_EQ(back[0], kUnreachable);
}

TEST(Distance, BfsHopsIgnoreLatency) {
  auto g = make_path(4);
  assign_uniform_latency(g, 50);
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[3], 3);
}

TEST(Distance, EccentricityAndDiameter) {
  auto g = make_path(5);
  assign_uniform_latency(g, 2);
  EXPECT_EQ(weighted_eccentricity(g, 2), 4);
  EXPECT_EQ(weighted_eccentricity(g, 0), 8);
  EXPECT_EQ(weighted_diameter(g), 8);
  EXPECT_EQ(hop_diameter(g), 4);
}

TEST(Distance, DiameterDisconnected) {
  const auto g = build_graph(3, {{0, 1, 1}});
  EXPECT_EQ(weighted_diameter(g), kUnreachable);
  EXPECT_EQ(hop_diameter(g), kUnreachable);
}

TEST(Distance, CliqueDiameterIsLatency) {
  auto g = make_clique(8);
  assign_uniform_latency(g, 3);
  EXPECT_EQ(weighted_diameter(g), 3);
  EXPECT_EQ(hop_diameter(g), 1);
}

TEST(Distance, DoubleSweepExactOnTrees) {
  Rng rng(3);
  auto g = make_binary_tree(31);
  assign_uniform_latency(g, 2);
  EXPECT_EQ(estimate_weighted_diameter(g, 4, rng), weighted_diameter(g));
}

TEST(Distance, DoubleSweepNeverExceedsTrueDiameter) {
  Rng rng(5);
  auto g = make_erdos_renyi(30, 0.15, rng);
  assign_random_uniform_latency(g, 1, 9, rng);
  const Latency exact = weighted_diameter(g);
  const Latency est = estimate_weighted_diameter(g, 6, rng);
  EXPECT_LE(est, exact);
  EXPECT_GE(est * 2, exact);  // double sweep is a 1/2-approximation
}

TEST(Distance, BadSourceThrows) {
  const auto g = make_path(3);
  EXPECT_THROW(dijkstra(g, 5), std::out_of_range);
  EXPECT_THROW(bfs_hops(g, 5), std::out_of_range);
}

}  // namespace
}  // namespace latgossip
