// Tests for the observability subsystem (src/obs/): packed event
// layout, recorder queries and lazy derived state, the metrics registry
// and phase scopes, trace/manifest exports, and pinned golden
// fingerprints for seeded runs of push-pull, EID, and Path Discovery —
// the semantic-regression net promised in obs/fingerprint.h.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/eid.h"
#include "core/push_pull.h"
#include "core/tk_schedule.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "obs/export.h"
#include "obs/fingerprint.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace latgossip {
namespace {

// --- packed event layout ----------------------------------------------

TEST(Event, PackedAccessorsRoundTrip) {
  const Event e = Event::make(17, 12, 3, 9, 41, EventKind::kDelivery);
  EXPECT_EQ(e.round(), 17);
  EXPECT_EQ(e.start(), 12);
  EXPECT_EQ(e.a(), 3u);
  EXPECT_EQ(e.b(), 9u);
  EXPECT_EQ(e.edge(), 41u);
  EXPECT_EQ(e.kind(), EventKind::kDelivery);
  EXPECT_EQ(sizeof(Event), 20u);
}

TEST(Event, SaturatesOversizedFields) {
  // Rounds past 2^32-1 clamp; edges at/above the 29-bit mask collapse
  // to the invalid sentinel — both far outside simulable ranges.
  const Round huge = Round{1} << 40;
  const Event e =
      Event::make(huge, -5, 1, 2, Event::kEdgeMask + 7, EventKind::kDrop);
  EXPECT_EQ(e.round(), static_cast<Round>(UINT32_MAX));
  EXPECT_EQ(e.start(), 0);  // negative rounds clamp to zero
  EXPECT_EQ(e.edge(), kInvalidEdge);
  EXPECT_EQ(e.kind(), EventKind::kDrop);
  const Event inv = Event::make(0, 0, 0, 0, kInvalidEdge, EventKind::kDrop);
  EXPECT_EQ(inv.edge(), kInvalidEdge);
}

// --- recorder ----------------------------------------------------------

TEST(Recorder, CountsAndRoundIndex) {
  EventRecorder rec;
  rec.record_activation(0, 1, 0, 0);
  rec.record_delivery(1, 0, 0, 0, 2);
  rec.record_activation(2, 3, 1, 2);
  rec.record_activation(4, 5, 2, 2);
  rec.record_drop(3, 2, 1, 2, 3, /*crash=*/false);
  rec.record_drop(5, 4, 2, 2, 3, /*crash=*/true);

  EXPECT_EQ(rec.size(), 6u);
  EXPECT_EQ(rec.activations(), 3u);
  EXPECT_EQ(rec.deliveries(), 1u);
  EXPECT_EQ(rec.drops(), 2u);  // link loss + crash loss together
  EXPECT_TRUE(rec.round_monotone());
  EXPECT_EQ(rec.max_round(), 3);
  EXPECT_EQ(rec.activations_in_round(0), 1u);
  EXPECT_EQ(rec.activations_in_round(1), 0u);
  EXPECT_EQ(rec.activations_in_round(2), 2u);
  const auto per_edge = rec.per_edge_counts(3);
  EXPECT_EQ(per_edge[0], 1u);
  EXPECT_EQ(per_edge[1], 1u);
  EXPECT_EQ(per_edge[2], 1u);
}

TEST(Recorder, QueriesInterleaveWithAppends) {
  // Derived state is lazy; querying mid-stream then appending more must
  // still give correct answers (the catch-up pass is incremental).
  EventRecorder rec;
  rec.record_activation(0, 1, 0, 0);
  EXPECT_EQ(rec.activations(), 1u);
  EXPECT_EQ(rec.activations_in_round(0), 1u);
  rec.record_activation(1, 2, 1, 1);
  rec.record_activation(2, 3, 2, 1);
  EXPECT_EQ(rec.activations(), 3u);
  EXPECT_EQ(rec.activations_in_round(1), 2u);
  EXPECT_EQ(rec.max_round(), 1);
}

TEST(Recorder, NonMonotoneStreamFallsBackToScans) {
  // Multi-phase protocols restart rounds at 0; round-indexed queries
  // must survive losing the boundary index.
  EventRecorder rec;
  rec.record_activation(0, 1, 0, 5);
  rec.record_activation(1, 2, 1, 0);  // round went backwards
  rec.record_activation(2, 3, 2, 5);
  EXPECT_FALSE(rec.round_monotone());
  EXPECT_EQ(rec.activations_in_round(5), 2u);
  EXPECT_EQ(rec.activations_in_round(0), 1u);
  EXPECT_EQ(rec.max_round(), 5);
}

TEST(Recorder, ClearResetsEverythingAndIsReusable) {
  EventRecorder rec;
  rec.record_activation(0, 1, 0, 3);
  rec.record_phase_begin("p", 0);
  const std::uint64_t fp1 = rec.fingerprint();
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.activations(), 0u);
  EXPECT_EQ(rec.max_round(), 0);
  EXPECT_TRUE(rec.round_monotone());
  EXPECT_TRUE(rec.phase_names().empty());
  // Same events after clear() reproduce the same digest.
  rec.record_activation(0, 1, 0, 3);
  rec.record_phase_begin("p", 0);
  EXPECT_EQ(rec.fingerprint(), fp1);
}

TEST(Recorder, PhaseNamesIntern) {
  EventRecorder rec;
  rec.record_phase_begin("alpha", 0);
  rec.record_phase_end("alpha", 4);
  rec.record_phase_begin("beta", 4);
  ASSERT_EQ(rec.phase_names().size(), 2u);
  EXPECT_EQ(rec.phase_name(0), "alpha");
  EXPECT_EQ(rec.phase_name(1), "beta");
  EXPECT_EQ(rec.phase_name(99), "?");
}

// --- fingerprint -------------------------------------------------------

TEST(FingerprintDigest, OrderInsensitive) {
  EventRecorder a, b;
  a.record_activation(0, 1, 0, 0);
  a.record_delivery(1, 0, 0, 0, 2);
  // Same multiset, recorded in the opposite order.
  b.record_delivery(1, 0, 0, 0, 2);
  b.record_activation(0, 1, 0, 0);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), 0u);
}

TEST(FingerprintDigest, SensitiveToEveryField) {
  const auto fp_of = [](Round r, Round s, NodeId u, NodeId v, EdgeId e,
                        EventKind k) {
    EventRecorder rec;
    rec.record_activation(0, 1, 0, 0);  // common prefix
    if (k == EventKind::kActivation)
      rec.record_activation(u, v, e, r);
    else
      rec.record_delivery(u, v, e, s, r);
    return rec.fingerprint();
  };
  const std::uint64_t base = fp_of(3, 1, 5, 6, 7, EventKind::kDelivery);
  EXPECT_NE(base, fp_of(4, 1, 5, 6, 7, EventKind::kDelivery));  // round
  EXPECT_NE(base, fp_of(3, 2, 5, 6, 7, EventKind::kDelivery));  // start
  EXPECT_NE(base, fp_of(3, 1, 8, 6, 7, EventKind::kDelivery));  // receiver
  EXPECT_NE(base, fp_of(3, 1, 5, 9, 7, EventKind::kDelivery));  // sender
  EXPECT_NE(base, fp_of(3, 1, 5, 6, 8, EventKind::kDelivery));  // edge
  EXPECT_NE(base, fp_of(3, 1, 5, 6, 7, EventKind::kActivation));  // kind
}

TEST(FingerprintDigest, MergeMatchesSingleStream) {
  Fingerprint whole, left, right;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const std::uint64_t h = fp_hash3(i, i * 3, i * 7);
    whole.add(h);
    (i % 2 ? left : right).add(h);
  }
  left.merge(right);
  EXPECT_EQ(left, whole);
  EXPECT_EQ(left.digest(), whole.digest());
  EXPECT_EQ(fingerprint_merge_digests(1, 2), fingerprint_merge_digests(2, 1));
}

// --- metrics -----------------------------------------------------------

TEST(Metrics, HistogramBuckets) {
  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_EQ(h.bucket(0), 1u);  // exact zero
  EXPECT_EQ(h.bucket(1), 1u);  // [1, 2)
  EXPECT_EQ(h.bucket(2), 2u);  // [2, 4)
  EXPECT_EQ(h.bucket(11), 1u);  // [1024, 2048)
  EXPECT_EQ(Histogram::bucket_lo(11), 1024u);
  EXPECT_DOUBLE_EQ(h.mean(), 206.0);
}

TEST(Metrics, PhaseScopeStampsClockAndRecorder) {
  EventRecorder rec;
  MetricsRegistry metrics;
  ObsContext obs{&rec, &metrics};
  SimResult fake;
  fake.rounds = 10;
  fake.activations = 4;
  {
    PhaseScope p(&obs, "phase_a");
    p.add(fake);
  }
  {
    PhaseScope p(&obs, "phase_b");
    p.add(fake);
  }
  EXPECT_EQ(metrics.clock(), 20);
  EXPECT_EQ(metrics.phases().at("phase_a").rounds, 10);
  EXPECT_EQ(metrics.phases().at("phase_a").entries, 1u);
  EXPECT_EQ(metrics.phases().at("phase_b").activations, 4u);
  // Recorder saw begin/end pairs stamped with the virtual clock:
  // phase_b opens at clock 10, after phase_a's rounds accumulated.
  ASSERT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.events()[0].kind(), EventKind::kPhaseBegin);
  EXPECT_EQ(rec.events()[2].round(), 10);
  EXPECT_EQ(rec.phase_name(rec.events()[2].a()), "phase_b");
}

TEST(Metrics, NullObsContextIsNoOp) {
  PhaseScope p(nullptr, "ghost");
  SimResult fake;
  fake.rounds = 5;
  p.add(fake);  // must not crash
  ObsContext empty;
  PhaseScope q(&empty, "ghost");
  q.add(fake);
}

TEST(Metrics, RecordSimResultAndEventHistograms) {
  EventRecorder rec;
  rec.record_delivery(2, 0, 1, 1, 2);
  rec.record_delivery(1, 0, 0, 0, 4);
  MetricsRegistry metrics;
  SimResult r;
  r.rounds = 7;
  r.messages_delivered = 2;
  record_sim_result(metrics, r);
  record_event_histograms(metrics, rec);
  EXPECT_EQ(metrics.counters().at("rounds").value(), 7u);
  EXPECT_EQ(metrics.counters().at("messages_delivered").value(), 2u);
  const Histogram& lat = metrics.histograms().at("delivery_latency");
  EXPECT_EQ(lat.count(), 2u);
  EXPECT_EQ(lat.sum(), 5u);  // latencies 4 and 1
  EXPECT_GT(metrics.histograms().at("inflight_depth").count(), 0u);
}

// --- engine integration + golden fingerprints --------------------------

WeightedGraph golden_graph() {
  Rng grng(7);
  auto g = make_erdos_renyi(64, 0.15, grng);
  assign_random_uniform_latency(g, 1, 6, grng);
  return g;
}

// Pinned digests for the seeded runs below. These change ONLY when the
// simulation semantics (contact choices, delivery rounds, drops) or the
// fingerprint definition change — either is a deliberate, reviewable
// event. Update by re-running the test and copying the reported value.
constexpr std::uint64_t kGoldenPushPull = 0x1ecb33cdce522dd6ULL;
constexpr std::uint64_t kGoldenEid = 0x35b57819e65cd3e3ULL;
constexpr std::uint64_t kGoldenTk = 0xfcf84fe9fa795ce6ULL;

TEST(GoldenFingerprint, SeededPushPull) {
  const WeightedGraph g = golden_graph();
  EventRecorder rec;
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(3));
  SimOptions opts;
  opts.recorder = &rec;
  opts.max_rounds = 1'000'000;
  const SimResult r = run_gossip(g, proto, opts);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(rec.fingerprint(), kGoldenPushPull);
  // Engine-recorded counts agree with the aggregate result.
  EXPECT_EQ(rec.activations(), r.activations);
  EXPECT_EQ(rec.deliveries(), r.messages_delivered);
  // A different protocol seed must not reproduce the digest.
  EventRecorder rec2;
  NetworkView view2(g, false);
  PushPullBroadcast proto2(view2, 0, Rng(4));
  SimOptions opts2;
  opts2.recorder = &rec2;
  opts2.max_rounds = 1'000'000;
  run_gossip(g, proto2, opts2);
  EXPECT_NE(rec2.fingerprint(), kGoldenPushPull);
}

TEST(GoldenFingerprint, SeededGeneralEid) {
  const WeightedGraph g = golden_graph();
  EventRecorder rec;
  MetricsRegistry metrics;
  ObsContext obs{&rec, &metrics};
  Rng rng(5);
  const auto out = run_general_eid(g, 0, rng, 1, &obs);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(rec.fingerprint(), kGoldenEid);
  // All four EID phases were tagged.
  EXPECT_TRUE(metrics.phases().count("eid/local_broadcast"));
  EXPECT_TRUE(metrics.phases().count("eid/spanner"));
  EXPECT_TRUE(metrics.phases().count("eid/rr_broadcast"));
  EXPECT_TRUE(metrics.phases().count("eid/termination_check"));
  // Phase rounds account for the whole run on the virtual clock.
  EXPECT_EQ(metrics.clock(), out.sim.rounds);
}

TEST(GoldenFingerprint, SeededPathDiscovery) {
  const WeightedGraph g = golden_graph();
  EventRecorder rec;
  MetricsRegistry metrics;
  ObsContext obs{&rec, &metrics};
  const auto out = run_path_discovery(g, &obs);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(rec.fingerprint(), kGoldenTk);
  // The stream spans multiple engine runs, so rounds restart.
  EXPECT_FALSE(rec.round_monotone());
  EXPECT_TRUE(metrics.phases().count("tk/termination_check"));
  bool any_dtg = false;
  for (const auto& [name, stats] : metrics.phases())
    any_dtg |= name.rfind("tk/dtg_ell_", 0) == 0;
  EXPECT_TRUE(any_dtg);
}

// --- exports -----------------------------------------------------------

TEST(Export, CsvByteCompatibleWithSimTrace) {
  const WeightedGraph g = golden_graph();
  const auto run_with = [&](SimOptions& opts) {
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, Rng(3));
    opts.max_rounds = 1'000'000;
    run_gossip(g, proto, opts);
  };
  EventRecorder rec;
  SimOptions opts;
  opts.recorder = &rec;
  run_with(opts);
  SimTrace trace;
  SimOptions legacy;
  trace.attach(legacy);
  run_with(legacy);
  EXPECT_EQ(activations_to_csv(rec), trace.to_csv());
}

TEST(Export, ChromeTraceStructure) {
  EventRecorder rec;
  MetricsRegistry metrics;
  ObsContext obs{&rec, &metrics};
  {
    PhaseScope p(&obs, "demo");
    rec.record_activation(0, 1, 0, 0);
    rec.record_delivery(1, 0, 0, 0, 3);
    rec.record_drop(2, 0, 1, 0, 2, false);
    SimResult r;
    r.rounds = 3;
    p.add(r);
  }
  const std::string json = to_chrome_trace_json(rec);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // activation
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // delivery span
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);  // phase begin
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);  // phase end
  EXPECT_NE(json.find("\"dur\":3"), std::string::npos);  // delivery 0 -> 3
  EXPECT_NE(json.find("demo"), std::string::npos);
  // Braces and brackets balance (cheap structural sanity, no parser dep).
  int depth = 0, sq = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    else if (c == '{') ++depth;
    else if (c == '}') --depth;
    else if (c == '[') ++sq;
    else if (c == ']') --sq;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(sq, 0);
}

TEST(Export, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

TEST(Export, PeakRssIsMonotoneHighWaterMark) {
  const std::size_t before = peak_rss_bytes();
#ifdef __linux__
  EXPECT_GT(before, 0u);  // /proc/self/status always has VmHWM on Linux
#endif
  // Touch a real allocation, then re-read: the mark never decreases.
  std::vector<char> ballast(8 << 20, 1);
  EXPECT_NE(ballast[4 << 20], 0);
  EXPECT_GE(peak_rss_bytes(), before);
}

TEST(Export, ManifestRecordFieldsAndJsonl) {
  RunInfo info;
  info.tool = "obs_test";
  info.protocol = "pushpull";
  info.graph_source = "er";
  info.graph_params = "n=64,p=0.15";
  info.nodes = 64;
  info.edges = 300;
  info.seed = 42;
  info.threads = 2;
  info.threads_effective = 2;
  info.threads_env = "2";
  SimResult r;
  r.rounds = 18;
  r.completed = true;
  r.fingerprint = 0xabcdULL;
  MetricsRegistry metrics;
  metrics.counter("rounds").inc(18);
  const std::string line =
      manifest_record(info, 0, 99, r, 1.5, metrics_json(metrics));
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(line.find('\n'), std::string::npos);  // single JSONL line
  for (const char* key :
       {"\"schema\":\"latgossip.run.v1\"", "\"build\":", "\"git\":",
        "\"tool\":\"obs_test\"", "\"protocol\":\"pushpull\"",
        "\"params\":\"n=64,p=0.15\"", "\"nodes\":64", "\"seed\":42",
        "\"threads\":2", "\"threads_effective\":2", "\"threads_env\":\"2\"",
        "\"trial\":0", "\"trial_seed\":99", "\"rounds\":18",
        "\"completed\":true", "\"fingerprint\":\"0x000000000000abcd\"",
        "\"wall_ms\":1.500", "\"peak_rss_bytes\":", "\"metrics\":",
        "\"counters\":"}) {
    EXPECT_NE(line.find(key), std::string::npos) << "missing " << key;
  }

  // threads_env records the LATGOSSIP_THREADS override; when the
  // producer ran without one the key is omitted, not emitted empty.
  info.threads_env.clear();
  const std::string no_env =
      manifest_record(info, 0, 99, r, 1.5, metrics_json(metrics));
  EXPECT_EQ(no_env.find("\"threads_env\""), std::string::npos);
  EXPECT_NE(no_env.find("\"threads_effective\":2"), std::string::npos);

  const auto path =
      (std::filesystem::temp_directory_path() / "latgossip_obs_test.jsonl")
          .string();
  std::remove(path.c_str());
  ASSERT_TRUE(append_jsonl(path, line));
  ASSERT_TRUE(append_jsonl(path, line));
  std::ifstream in(path);
  std::string l1, l2, l3;
  ASSERT_TRUE(std::getline(in, l1));
  ASSERT_TRUE(std::getline(in, l2));
  EXPECT_FALSE(std::getline(in, l3));
  EXPECT_EQ(l1, line);
  EXPECT_EQ(l2, line);
  std::remove(path.c_str());
}

TEST(Export, BuildInfoPopulated) {
  const BuildInfo b = build_info();
  EXPECT_NE(b.git_hash, nullptr);
  EXPECT_NE(b.compiler, nullptr);
  EXPECT_STRNE(b.compiler, "");
  const std::string json = build_info_json();
  EXPECT_NE(json.find("\"git\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\""), std::string::npos);
}

}  // namespace
}  // namespace latgossip
