// Tests for the serve daemon: the transport-free handle_request core
// (ping/stats/completion_time/spread_curve/sweep/shutdown, error
// handling) and one end-to-end pass over a real Unix socket via
// run_server + the query_server client.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "store/json.h"
#include "store/server.h"
#include "store/store.h"
#include "store/wire.h"

namespace latgossip {
namespace {

std::string scratch_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("latgossip_server_test_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

// Requests answer deterministically, so tests compare raw payloads.
constexpr const char* kCell =
    R"({"op":"completion_time","graph":{"family":"er","n":64,"p":0.1,)"
    R"("seed":2,"lat":"range","lat_lo":1,"lat_hi":8},"proto":"pushpull",)"
    R"("seed":5,"trials":4})";

JsonValue parsed(const std::string& response) {
  std::string err;
  auto doc = json_parse(response, &err);
  EXPECT_TRUE(doc) << err << " in: " << response;
  return doc ? *doc : JsonValue();
}

TEST(StoreServer, PingStatsAndUnknownOp) {
  const std::string dir = scratch_dir("ping");
  ExperimentStore store(dir);
  bool shutdown = true;
  EXPECT_EQ(handle_request(store, R"({"op":"ping"})", 1, &shutdown),
            R"({"ok":true,"op":"ping"})");
  EXPECT_FALSE(shutdown);  // ping must clear a stale flag

  const JsonValue stats =
      parsed(handle_request(store, R"({"op":"stats"})", 1, nullptr));
  EXPECT_TRUE(stats.get_bool("ok", false));
  ASSERT_NE(stats.get("store"), nullptr);
  EXPECT_EQ(stats.get("store")->get_i64("records", -1), 0);

  const JsonValue bad =
      parsed(handle_request(store, R"({"op":"bogus"})", 1, nullptr));
  EXPECT_FALSE(bad.get_bool("ok", true));
  EXPECT_NE(bad.get_string("error", "").find("bogus"), std::string::npos);

  const JsonValue notjson = parsed(handle_request(store, "{{{", 1, nullptr));
  EXPECT_FALSE(notjson.get_bool("ok", true));

  handle_request(store, R"({"op":"shutdown"})", 1, &shutdown);
  EXPECT_TRUE(shutdown);
  std::filesystem::remove_all(dir);
}

TEST(StoreServer, CompletionMissThenHitIdenticalPayload) {
  const std::string dir = scratch_dir("completion");
  ExperimentStore store(dir);
  const std::string cold = handle_request(store, kCell, 2, nullptr);
  const std::string warm = handle_request(store, kCell, 2, nullptr);

  const JsonValue c = parsed(cold);
  const JsonValue w = parsed(warm);
  ASSERT_TRUE(c.get_bool("ok", false)) << cold;
  EXPECT_EQ(c.get("store")->get_i64("misses", -1), 4);
  EXPECT_EQ(c.get("store")->get_i64("hits", -1), 0);
  EXPECT_EQ(w.get("store")->get_i64("hits", -1), 4);
  EXPECT_EQ(w.get("store")->get_i64("misses", -1), 0);
  // The result block — counters, means, merged fingerprint — must be
  // byte-identical between the computed and the cached answer.
  EXPECT_EQ(json_serialize(*c.get("result")), json_serialize(*w.get("result")));
  const JsonValue* result = c.get("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->get_i64("trials", -1), 4);
  EXPECT_EQ(result->get_i64("completed", -1), 4);
  EXPECT_NE(result->get_string("fingerprint", ""), "0x0000000000000000");
  std::filesystem::remove_all(dir);
}

TEST(StoreServer, SpreadCurveComputedAndReplayedFromCache) {
  const std::string dir = scratch_dir("curve");
  ExperimentStore store(dir);
  const std::string req =
      R"({"op":"spread_curve","graph":{"family":"cycle","n":12},)"
      R"("seed":3,"trials":3})";
  const std::string cold = handle_request(store, req, 2, nullptr);
  const std::string warm = handle_request(store, req, 2, nullptr);
  const JsonValue c = parsed(cold);
  ASSERT_TRUE(c.get_bool("ok", false)) << cold;
  EXPECT_EQ(c.get("store")->get_i64("misses", -1), 3);
  // Warm curves come out of cached meta, not recomputation — and match.
  const JsonValue w = parsed(warm);
  EXPECT_EQ(w.get("store")->get_i64("hits", -1), 3);
  EXPECT_EQ(json_serialize(*c.get("result")), json_serialize(*w.get("result")));

  const JsonValue* result = c.get("result");
  const JsonValue* mean = result->get("curve_mean");
  ASSERT_TRUE(mean != nullptr && mean->is_array());
  ASSERT_FALSE(mean->items().empty());
  // A completed broadcast ends with every node informed.
  EXPECT_DOUBLE_EQ(mean->items().back().as_double(), 12.0);
  EXPECT_DOUBLE_EQ(result->get("curve_min")->items().back().as_double(), 12.0);
  std::filesystem::remove_all(dir);
}

TEST(StoreServer, SweepAggregatesCellsAndSharesCache) {
  const std::string dir = scratch_dir("sweep");
  ExperimentStore store(dir);
  const std::string sweep =
      R"({"op":"sweep","cells":[)"
      R"({"graph":{"family":"cycle","n":8},"proto":"pushpull","seed":1,"trials":2},)"
      R"({"graph":{"family":"cycle","n":8},"proto":"pushpull","seed":2,"trials":2},)"
      R"({"graph":{"family":"star","n":9},"proto":"pushpull","seed":1,"trials":2}]})";
  const JsonValue cold = parsed(handle_request(store, sweep, 2, nullptr));
  ASSERT_TRUE(cold.get_bool("ok", false));
  ASSERT_NE(cold.get("results"), nullptr);
  EXPECT_EQ(cold.get("results")->items().size(), 3u);
  EXPECT_EQ(cold.get("store")->get_i64("misses", -1), 6);

  // Re-sweeping skips every previously computed cell.
  const JsonValue warm = parsed(handle_request(store, sweep, 2, nullptr));
  EXPECT_EQ(warm.get("store")->get_i64("hits", -1), 6);
  EXPECT_EQ(warm.get("store")->get_i64("misses", -1), 0);

  // A single-cell query over one of the swept cells also hits: the
  // sweep and the point query share one key space.
  const std::string point =
      R"({"op":"completion_time","graph":{"family":"star","n":9},)"
      R"("proto":"pushpull","seed":1,"trials":2})";
  const JsonValue p = parsed(handle_request(store, point, 2, nullptr));
  EXPECT_EQ(p.get("store")->get_i64("hits", -1), 2);
  std::filesystem::remove_all(dir);
}

TEST(StoreServer, RejectsBadRequests) {
  const std::string dir = scratch_dir("badreq");
  ExperimentStore store(dir);
  for (const char* req : {
           // missing graph
           R"({"op":"completion_time","trials":1})",
           // unknown family
           R"({"op":"completion_time","graph":{"family":"moebius","n":8}})",
           // unknown latency model
           R"({"op":"completion_time","graph":{"family":"cycle","n":8,"lat":"warp"}})",
           // zero trials
           R"({"op":"completion_time","graph":{"family":"cycle","n":8},"trials":0})",
           // source out of range
           R"({"op":"completion_time","graph":{"family":"cycle","n":8},"source":8})",
           // spread_curve only knows pushpull
           R"({"op":"spread_curve","graph":{"family":"cycle","n":8},"proto":"flooding"})",
           // sweep without cells
           R"({"op":"sweep"})",
       }) {
    const JsonValue r = parsed(handle_request(store, req, 1, nullptr));
    EXPECT_FALSE(r.get_bool("ok", true)) << req;
    EXPECT_FALSE(r.get_string("error", "").empty()) << req;
  }
  // Errors must not poison the store or the connection: a good request
  // still works afterwards.
  EXPECT_TRUE(parsed(handle_request(store, R"({"op":"ping"})", 1, nullptr))
                  .get_bool("ok", false));
  EXPECT_EQ(store.size(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(StoreServer, FloodingCellsKeyOnRumorRep) {
  const std::string dir = scratch_dir("flooding");
  ExperimentStore store(dir);
  const std::string req =
      R"({"op":"completion_time","graph":{"family":"cycle","n":10},)"
      R"("proto":"flooding","seed":4,"trials":2})";
  const JsonValue cold = parsed(handle_request(store, req, 1, nullptr));
  ASSERT_TRUE(cold.get_bool("ok", false));
  const JsonValue warm = parsed(handle_request(store, req, 1, nullptr));
  EXPECT_EQ(warm.get("store")->get_i64("hits", -1), 2);
  EXPECT_EQ(json_serialize(*cold.get("result")),
            json_serialize(*warm.get("result")));
  std::filesystem::remove_all(dir);
}

TEST(StoreServer, EndToEndOverUnixSocket) {
  const std::string dir = scratch_dir("socket");
  { ExperimentStore create(dir); }  // pre-create so the thread can't race
  const std::string socket_path =
      (std::filesystem::temp_directory_path() / "latgossip_test.sock")
          .string();

  ServeOptions opts;
  opts.store_dir = dir;
  opts.socket_path = socket_path;
  opts.threads = 2;
  opts.max_requests = 16;  // safety net if shutdown is lost
  opts.quiet = true;
  std::thread server([&] { EXPECT_EQ(run_server(opts), 0); });

  // The listener may not be up yet; retry connecting briefly.
  std::string ping;
  for (int attempt = 0; attempt < 100; ++attempt) {
    try {
      ping = query_server(socket_path, R"({"op":"ping"})");
      break;
    } catch (const std::runtime_error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ASSERT_EQ(ping, R"({"ok":true,"op":"ping"})");

  const std::string cold = query_server(socket_path, kCell);
  const std::string warm = query_server(socket_path, kCell);
  const JsonValue c = parsed(cold);
  const JsonValue w = parsed(warm);
  ASSERT_TRUE(c.get_bool("ok", false)) << cold;
  EXPECT_EQ(c.get("store")->get_i64("misses", -1), 4);
  EXPECT_EQ(w.get("store")->get_i64("hits", -1), 4);
  EXPECT_EQ(json_serialize(*c.get("result")), json_serialize(*w.get("result")));

  EXPECT_EQ(query_server(socket_path, R"({"op":"shutdown"})"),
            R"({"ok":true,"op":"shutdown"})");
  server.join();
  // Clean shutdown removes the socket file.
  EXPECT_FALSE(std::filesystem::exists(socket_path));
  // The daemon's inserts persist: a fresh store sees the 4 cells.
  ExperimentStore reopened(dir);
  EXPECT_EQ(reopened.size(), 4u);
  std::filesystem::remove_all(dir);
}

TEST(StoreServer, ManyConcurrentClientsConsistent) {
  // Stress leg (runs under TSan in CI): N client threads hammer one
  // daemon over the socket with the same deterministic cell. Every
  // response must carry the byte-identical result block, and the
  // per-response hit/miss counters must always cover the full trial
  // count — the store never answers a half-warm cell inconsistently.
  const std::string dir = scratch_dir("stress");
  { ExperimentStore create(dir); }  // pre-create so the thread can't race
  const std::string socket_path =
      (std::filesystem::temp_directory_path() / "latgossip_stress.sock")
          .string();

  ServeOptions opts;
  opts.store_dir = dir;
  opts.socket_path = socket_path;
  opts.threads = 4;
  opts.max_requests = 128;  // safety net if shutdown is lost
  opts.quiet = true;
  std::thread server([&] { EXPECT_EQ(run_server(opts), 0); });

  std::string ping;
  for (int attempt = 0; attempt < 100; ++attempt) {
    try {
      ping = query_server(socket_path, R"({"op":"ping"})");
      break;
    } catch (const std::runtime_error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ASSERT_EQ(ping, R"({"ok":true,"op":"ping"})");

  // One cold query fixes the canonical answer; everything after is
  // compared against it byte for byte.
  const std::string canonical =
      json_serialize(*parsed(query_server(socket_path, kCell)).get("result"));

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 6;
  std::vector<std::string> results(kClients * kQueriesPerClient);
  std::vector<long long> hits(kClients * kQueriesPerClient, -1);
  std::vector<long long> misses(kClients * kQueriesPerClient, -1);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int cidx = 0; cidx < kClients; ++cidx) {
    clients.emplace_back([&, cidx] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const int slot = cidx * kQueriesPerClient + q;
        const std::string response = query_server(socket_path, kCell);
        const JsonValue doc = parsed(response);
        if (!doc.get_bool("ok", false) || doc.get("result") == nullptr)
          continue;  // leaves the slot empty; checked below
        results[slot] = json_serialize(*doc.get("result"));
        hits[slot] = doc.get("store")->get_i64("hits", -1);
        misses[slot] = doc.get("store")->get_i64("misses", -1);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (std::size_t slot = 0; slot < results.size(); ++slot) {
    EXPECT_EQ(results[slot], canonical) << "client response " << slot;
    // The cell has 4 trials; each answer accounts for all of them, and
    // after the cold fill everything should be a hit.
    EXPECT_EQ(hits[slot] + misses[slot], 4) << "client response " << slot;
    EXPECT_EQ(misses[slot], 0) << "client response " << slot;
  }

  EXPECT_EQ(query_server(socket_path, R"({"op":"shutdown"})"),
            R"({"ok":true,"op":"shutdown"})");
  server.join();
  // Exactly the 4 cells of the shared key exist, however many clients
  // raced over them.
  ExperimentStore reopened(dir);
  EXPECT_EQ(reopened.size(), 4u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace latgossip
