// Tests for weighted conductance (Definitions 1-2): hand-computed values,
// a brute-force cross-check, and the φ*/ℓ* selection rule.

#include <gtest/gtest.h>

#include <limits>

#include "analysis/conductance.h"
#include "graph/gadgets.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/latency_models.h"

namespace latgossip {
namespace {

/// Independent brute-force reference: iterate all subsets directly.
double brute_force_phi(const WeightedGraph& g, Latency ell) {
  const std::size_t n = g.num_nodes();
  const std::size_t vol_total = 2 * g.num_edges();
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t mask = 1; mask + 1 < (std::uint64_t{1} << n); ++mask) {
    Bitset in_set(n);
    for (std::size_t v = 0; v < n; ++v)
      if ((mask >> v) & 1) in_set.set(v);
    const std::size_t vol = g.volume(in_set);
    const std::size_t vmin = std::min(vol, vol_total - vol);
    if (vmin == 0) continue;
    const double phi = static_cast<double>(cut_edges_leq(g, in_set, ell)) /
                       static_cast<double>(vmin);
    best = std::min(best, phi);
  }
  return best;
}

TEST(CutPrimitives, CutEdgesLeq) {
  const auto g = build_graph(4, {{0, 1, 1}, {1, 2, 5}, {2, 3, 1}, {0, 3, 5}});
  Bitset cut(4);
  cut.set(0);
  cut.set(1);
  EXPECT_EQ(cut_edges_leq(g, cut, 1), 0u);
  EXPECT_EQ(cut_edges_leq(g, cut, 5), 2u);
  EXPECT_EQ(cut_edges_leq(g, cut, 100), 2u);
}

TEST(CutPrimitives, PhiOfCut) {
  auto g = make_cycle(4);
  Bitset half(4);
  half.set(0);
  half.set(1);
  // 2 cut edges; both sides have volume 4.
  EXPECT_DOUBLE_EQ(phi_ell_of_cut(g, half, 1), 0.5);
  EXPECT_THROW(phi_ell_of_cut(g, Bitset(4), 1), std::invalid_argument);
}

TEST(ExactConductance, PathP4) {
  const auto g = make_path(4);
  const CutResult r = conductance_exact(g);
  EXPECT_DOUBLE_EQ(r.phi, 1.0 / 3.0);
}

TEST(ExactConductance, CliqueK4) {
  const auto g = make_clique(4);
  EXPECT_DOUBLE_EQ(conductance_exact(g).phi, 2.0 / 3.0);
}

TEST(ExactConductance, ArgminCutIsValid) {
  const auto g = make_path(4);
  const CutResult r = conductance_exact(g);
  // The reported cut must achieve the reported value.
  EXPECT_DOUBLE_EQ(phi_ell_of_cut(g, r.argmin_cut, g.max_latency()), r.phi);
}

TEST(ExactConductance, MatchesBruteForceOnRandomGraphs) {
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    auto g = make_erdos_renyi(9, 0.4, rng);
    assign_random_uniform_latency(g, 1, 4, rng);
    for (Latency ell : {1, 2, 3, 4}) {
      const double exact = weight_ell_conductance_exact(g, ell).phi;
      EXPECT_DOUBLE_EQ(exact, brute_force_phi(g, ell))
          << "trial " << trial << " ell " << ell;
    }
  }
}

TEST(ExactConductance, GuardsAgainstLargeGraphs) {
  const auto g = make_clique(30);
  EXPECT_THROW(conductance_exact(g, 24), std::invalid_argument);
}

TEST(ExactConductance, RejectsIsolatedNode) {
  const auto g = build_graph(3, {{0, 1, 1}});
  EXPECT_THROW(conductance_exact(g), std::invalid_argument);
}

TEST(WeightedConductance, DumbbellTriangles) {
  // Two triangles joined by one latency-5 bridge.
  const auto g = make_dumbbell(3, 1, 5);
  const auto wc = weighted_conductance_exact(g);
  ASSERT_EQ(wc.levels.size(), 2u);
  EXPECT_EQ(wc.levels[0], 1);
  EXPECT_EQ(wc.levels[1], 5);
  // phi_1 = 0 (the bridge cut has no latency-1 edges).
  EXPECT_DOUBLE_EQ(wc.phi[0], 0.0);
  // phi_5 = 1/7 (bridge cut: one edge, min volume 3*2+1).
  EXPECT_DOUBLE_EQ(wc.phi[1], 1.0 / 7.0);
  EXPECT_EQ(wc.ell_star, 5);
  EXPECT_DOUBLE_EQ(wc.phi_star, 1.0 / 7.0);
}

TEST(WeightedConductance, UnitLatenciesReduceToClassical) {
  // "If all edges have latency 1, then φ* is exactly equal to the
  // classical graph conductance."
  Rng rng(7);
  auto g = make_erdos_renyi(10, 0.4, rng);
  const auto wc = weighted_conductance_exact(g);
  ASSERT_EQ(wc.levels.size(), 1u);
  EXPECT_EQ(wc.ell_star, 1);
  EXPECT_DOUBLE_EQ(wc.phi_star, conductance_exact(g).phi);
}

TEST(WeightedConductance, PhiMonotoneInEll) {
  Rng rng(21);
  auto g = make_erdos_renyi(10, 0.5, rng);
  assign_random_uniform_latency(g, 1, 6, rng);
  const auto wc = weighted_conductance_exact(g);
  for (std::size_t i = 1; i < wc.phi.size(); ++i)
    EXPECT_GE(wc.phi[i], wc.phi[i - 1]);
}

TEST(WeightedConductance, CriticalLatencyPrefersFastLevel) {
  // Clique with all fast edges except one slow one: the fast level
  // dominates φ_ℓ/ℓ.
  auto g = make_clique(6);
  g.set_latency(0, 50);
  const auto wc = weighted_conductance_exact(g);
  EXPECT_EQ(wc.ell_star, 1);
}

TEST(SelectPhiStar, PicksMaxRatio) {
  const auto wc = select_phi_star({1, 4, 10}, {0.05, 0.4, 0.5});
  EXPECT_EQ(wc.ell_star, 4);  // 0.4/4 = 0.1 beats 0.05 and 0.05
  EXPECT_DOUBLE_EQ(wc.phi_star, 0.4);
}

TEST(SelectPhiStar, ValidatesInput) {
  EXPECT_THROW(select_phi_star({}, {}), std::invalid_argument);
  EXPECT_THROW(select_phi_star({3, 2}, {0.1, 0.2}), std::invalid_argument);
  EXPECT_THROW(select_phi_star({1, 2}, {0.1}), std::invalid_argument);
}

TEST(WeightedConductance, LayeredRingMatchesLemma9Bound) {
  // Small instance of the Theorem 8 ring: phi_ell is at most the
  // analytic halving-cut value and within a constant of it (Lemma 10).
  Rng rng(31);
  const auto ring = make_layered_ring(4, 3, 6, rng);
  const auto wc = weighted_conductance_exact(ring.graph);
  const double cut_value = ring.analytic_phi_ell_cut();
  // phi at the cross-latency level:
  double phi_ell = 0.0;
  for (std::size_t i = 0; i < wc.levels.size(); ++i)
    if (wc.levels[i] == 6) phi_ell = wc.phi[i];
  EXPECT_LE(phi_ell, cut_value + 1e-12);
  EXPECT_GE(phi_ell, cut_value / 4.0);
}

}  // namespace
}  // namespace latgossip
