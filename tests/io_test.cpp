// Tests for graph serialization (graph/io.h).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/gadgets.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/latency_models.h"

namespace latgossip {
namespace {

void expect_same_graph(const WeightedGraph& a, const WeightedGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
    EXPECT_EQ(a.edge(e).latency, b.edge(e).latency);
  }
}

TEST(GraphIo, RoundTripString) {
  Rng rng(1);
  auto g = make_erdos_renyi(20, 0.3, rng);
  assign_random_uniform_latency(g, 1, 9, rng);
  const WeightedGraph back = graph_from_string(graph_to_string(g));
  expect_same_graph(g, back);
}

TEST(GraphIo, RoundTripPreservesEdgeIds) {
  // Gadget bookkeeping addresses cross edges by id; ids must survive.
  Rng rng(2);
  const auto gadget = make_guessing_gadget(
      4, make_singleton_target(4, rng), 1, 50, false);
  const WeightedGraph back =
      graph_from_string(graph_to_string(gadget.graph));
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      const EdgeId e = gadget.cross_edge(i, j);
      EXPECT_EQ(back.edge(e).latency, gadget.graph.latency(e));
    }
}

TEST(GraphIo, RoundTripEmptyAndSingleton) {
  expect_same_graph(WeightedGraph(0),
                    graph_from_string(graph_to_string(WeightedGraph(0))));
  expect_same_graph(WeightedGraph(5),
                    graph_from_string(graph_to_string(WeightedGraph(5))));
}

TEST(GraphIo, CommentsAndWhitespaceTolerated) {
  const std::string text =
      "# a comment\n"
      "latgossip-graph 1\n"
      "  # sizes\n"
      "3 2\n"
      "0 1 4\n"
      "# an edge comment\n"
      "1 2 7\n";
  const WeightedGraph g = graph_from_string(text);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.latency(*g.find_edge(1, 2)), 7);
}

/// Parse `text` expecting failure; return the exception message.
std::string parse_error(const std::string& text) {
  try {
    graph_from_string(text);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected parse failure for: " << text;
  return "";
}

TEST(GraphIo, RejectsMalformedInput) {
  EXPECT_THROW(graph_from_string(""), std::runtime_error);
  EXPECT_THROW(graph_from_string("wrong-magic 1\n1 0\n"),
               std::runtime_error);
  EXPECT_THROW(graph_from_string("latgossip-graph 9\n1 0\n"),
               std::runtime_error);
  EXPECT_THROW(graph_from_string("latgossip-graph 1\n2 1\n0 5 1\n"),
               std::runtime_error);  // endpoint out of range
  EXPECT_THROW(graph_from_string("latgossip-graph 1\n2 2\n0 1 1\n"),
               std::runtime_error);  // truncated
}

TEST(GraphIo, RejectsBadLatencies) {
  EXPECT_NE(parse_error("latgossip-graph 1\n2 1\n0 1 0\n")
                .find("latency must be >= 1"),
            std::string::npos);
  EXPECT_NE(parse_error("latgossip-graph 1\n2 1\n0 1 -3\n")
                .find("latency must be >= 1"),
            std::string::npos);
  // The failing edge's position is part of the message.
  EXPECT_NE(parse_error("latgossip-graph 1\n3 2\n0 1 4\n1 2 0\n")
                .find("at edge 1"),
            std::string::npos);
}

TEST(GraphIo, RejectsNegativeIdsAndSizes) {
  EXPECT_NE(parse_error("latgossip-graph 1\n-2 1\n0 1 1\n")
                .find("negative size"),
            std::string::npos);
  EXPECT_NE(parse_error("latgossip-graph 1\n2 -1\n").find("negative size"),
            std::string::npos);
  EXPECT_NE(parse_error("latgossip-graph 1\n2 1\n-1 1 1\n")
                .find("negative node id"),
            std::string::npos);
}

TEST(GraphIo, RejectsDuplicateAndSelfLoopEdges) {
  const std::string dup = parse_error(
      "latgossip-graph 1\n3 3\n0 1 2\n1 2 2\n1 0 5\n");
  EXPECT_NE(dup.find("at edge 2"), std::string::npos) << dup;
  EXPECT_THROW(graph_from_string("latgossip-graph 1\n3 1\n1 1 2\n"),
               std::runtime_error);  // self-loop
}

TEST(GraphIo, RejectsImpossibleEdgeCount) {
  // 3 nodes admit at most 3 simple edges.
  EXPECT_NE(parse_error("latgossip-graph 1\n3 4\n0 1 1\n0 2 1\n1 2 1\n")
                .find("exceeds a simple graph"),
            std::string::npos);
}

TEST(GraphIo, RejectsTrailingGarbage) {
  EXPECT_NE(parse_error("latgossip-graph 1\n2 1\n0 1 1\nsurprise\n")
                .find("trailing garbage"),
            std::string::npos);
  // Trailing comments and whitespace remain fine.
  const WeightedGraph g = graph_from_string(
      "latgossip-graph 1\n2 1\n0 1 1\n# trailing comment\n\n");
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphIo, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "latgossip_io_test.graph")
          .string();
  auto g = make_ring_of_cliques(3, 3, 6);
  save_graph(path, g);
  const WeightedGraph back = load_graph(path);
  expect_same_graph(g, back);
  std::remove(path.c_str());
  EXPECT_THROW(load_graph(path + ".missing"), std::runtime_error);
}

}  // namespace
}  // namespace latgossip
