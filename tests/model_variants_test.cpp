// Tests for the model variations the paper discusses: blocking
// communication (Appendix E), bounded in-degree (Conclusion / Daum et
// al.), and message-size accounting (Conclusion).

#include <gtest/gtest.h>

#include "core/dtg.h"
#include "core/flooding.h"
#include "core/push_pull.h"
#include "core/rr_broadcast.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"

namespace latgossip {
namespace {

// ------------------------------------------------------------ blocking

TEST(Blocking, OneOutstandingInitiationEnforced) {
  // A latency-5 edge: in blocking mode a node can launch at most one
  // exchange per 5 rounds, so activations over 20 rounds are <= 4+1 per
  // node instead of 20.
  const auto g = build_graph(2, {{0, 1, 5}});

  struct Chatty {
    using Payload = int;
    std::optional<NodeId> select_contact(NodeId u, Round) {
      return u == 0 ? std::optional<NodeId>(1) : std::nullopt;
    }
    Payload capture_payload(NodeId, Round) const { return 0; }
    void deliver(NodeId, NodeId, Payload, EdgeId, Round, Round) {}
    bool done(Round) const { return false; }
  } proto;

  SimOptions opts;
  opts.max_rounds = 20;
  opts.blocking = true;
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_LE(r.activations, 5u);
  EXPECT_GE(r.activations, 3u);

  SimOptions nonblocking;
  nonblocking.max_rounds = 20;
  Chatty proto2;
  const SimResult r2 = run_gossip(g, proto2, nonblocking);
  EXPECT_EQ(r2.activations, 20u);
}

TEST(Blocking, DtgStillCorrectInBlockingModel) {
  // Appendix E: "This algorithm works even when nodes cannot initiate a
  // new exchange in every round ... communication is blocking." DTG
  // issues one exchange per superround of length ell, so blocking never
  // bites (the previous round trip finished within ell rounds).
  auto g = make_clique(12);
  Rng rng(3);
  assign_random_uniform_latency(g, 1, 3, rng);
  NetworkView view(g, true);
  DtgLocalBroadcast proto(view, 3, DtgLocalBroadcast::own_id_rumors(12));
  SimOptions opts;
  opts.blocking = true;
  opts.stop_when_idle = false;
  opts.max_rounds = 1'000'000;
  const SimResult r = run_gossip(g, proto, opts);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(local_broadcast_complete(g, proto.rumors()));
}

TEST(Blocking, PushPullSlowsButCompletes) {
  auto g = make_clique(16);
  assign_uniform_latency(g, 8);
  Round free_rounds = 0, blocking_rounds = 0;
  {
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, Rng(5));
    SimOptions opts;
    opts.max_rounds = 1'000'000;
    const SimResult r = run_gossip(g, proto, opts);
    ASSERT_TRUE(r.completed);
    free_rounds = r.rounds;
  }
  {
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, Rng(5));
    SimOptions opts;
    opts.max_rounds = 1'000'000;
    opts.blocking = true;
    const SimResult r = run_gossip(g, proto, opts);
    ASSERT_TRUE(r.completed);
    blocking_rounds = r.rounds;
  }
  // Losing the non-blocking pipeline can only cost time.
  EXPECT_GE(blocking_rounds, free_rounds);
}

// ------------------------------------------------------- in-degree cap

TEST(InDegreeCap, ExcessInitiationsRejected) {
  // A star in which every leaf contacts the hub each round; with cap 2,
  // most initiations bounce.
  const auto g = make_star(10);
  NetworkView view(g, false);
  RoundRobinFlooding proto(view, GossipGoal::kAllToAll, 0,
                           own_id_rumors(10));
  SimOptions opts;
  opts.max_incoming_per_round = 2;
  opts.max_rounds = 5'000;
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_GT(r.exchanges_rejected, 0u);
  EXPECT_TRUE(r.completed);  // still finishes, just needs more rounds
}

TEST(InDegreeCap, CapSlowsStarDissemination) {
  const auto g = make_star(16);
  Round uncapped = 0, capped = 0;
  {
    NetworkView view(g, false);
    RoundRobinFlooding proto(view, GossipGoal::kAllToAll, 0,
                             own_id_rumors(16));
    SimOptions opts;
    opts.max_rounds = 100'000;
    const SimResult r = run_gossip(g, proto, opts);
    ASSERT_TRUE(r.completed);
    uncapped = r.rounds;
  }
  {
    NetworkView view(g, false);
    RoundRobinFlooding proto(view, GossipGoal::kAllToAll, 0,
                             own_id_rumors(16));
    SimOptions opts;
    opts.max_rounds = 100'000;
    opts.max_incoming_per_round = 1;
    const SimResult r = run_gossip(g, proto, opts);
    ASSERT_TRUE(r.completed);
    capped = r.rounds;
  }
  EXPECT_GT(capped, uncapped);
}

TEST(InDegreeCap, UnlimitedByDefault) {
  const auto g = make_star(8);
  NetworkView view(g, false);
  RoundRobinFlooding proto(view, GossipGoal::kAllToAll, 0, own_id_rumors(8));
  SimOptions opts;
  opts.max_rounds = 10'000;
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_EQ(r.exchanges_rejected, 0u);
}

TEST(Blocking, ResponseLossStillUnblocks) {
  // A blocked initiator whose round trip is lost must regain the right
  // to initiate (the response leg completes the trip even when its
  // content is dropped) — otherwise lossy links deadlock the blocking
  // model.
  const auto g = build_graph(2, {{0, 1, 2}});

  struct Chatty {
    using Payload = int;
    std::size_t initiations = 0;
    std::optional<NodeId> select_contact(NodeId u, Round) {
      if (u != 0) return std::nullopt;
      ++initiations;
      return 1;
    }
    Payload capture_payload(NodeId, Round) const { return 0; }
    void deliver(NodeId, NodeId, Payload, EdgeId, Round, Round) {}
    bool done(Round) const { return false; }
  } proto;

  SimOptions opts;
  opts.blocking = true;
  opts.max_rounds = 30;
  opts.drop_delivery = [](NodeId, NodeId, EdgeId, Round, Round) {
    return true;  // lose every payload
  };
  run_gossip(g, proto, opts);
  // One initiation per 2-round trip over 30 rounds: ~15, and certainly
  // more than one (the deadlock symptom).
  EXPECT_GE(proto.initiations, 10u);
}

TEST(Blocking, CrashedPeerDoesNotWedgeInitiator) {
  // Node 1 crashes immediately; node 0's round trips are dropped but
  // still unblock; the run must keep making initiations.
  const auto g = build_graph(2, {{0, 1, 3}});
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(3));
  SimOptions opts;
  opts.blocking = true;
  opts.max_rounds = 40;
  opts.is_crashed = [](NodeId u, Round) { return u == 1; };
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_FALSE(r.completed);
  EXPECT_GE(r.activations, 8u);
}

// ------------------------------------------------- message accounting

TEST(PayloadBits, SingleRumorPushPullIsSmallMessage) {
  const auto g = make_clique(12);
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(7));
  SimOptions opts;
  opts.max_rounds = 10'000;
  const SimResult r = run_gossip(g, proto, opts);
  ASSERT_TRUE(r.completed);
  // Exactly one bit per payload, two payloads per activation.
  EXPECT_EQ(r.payload_bits, 2 * r.activations);
}

TEST(PayloadBits, RumorSetProtocolsPayPerRumor) {
  const auto g = make_clique(12);
  NetworkView view(g, false);
  PushPullGossip proto(view, GossipGoal::kAllToAll, 0,
                       PushPullGossip::own_id_rumors(12), Rng(9));
  SimOptions opts;
  opts.max_rounds = 10'000;
  const SimResult r = run_gossip(g, proto, opts);
  ASSERT_TRUE(r.completed);
  // Every payload carries at least one 32-bit rumor id.
  EXPECT_GE(r.payload_bits, 32 * 2 * r.activations);
}

TEST(PayloadBits, DefaultsToOneBitWithoutHook) {
  const auto g = build_graph(2, {{0, 1, 1}});
  struct NoHook {
    using Payload = int;
    std::optional<NodeId> select_contact(NodeId u, Round r) {
      return (u == 0 && r == 0) ? std::optional<NodeId>(1) : std::nullopt;
    }
    Payload capture_payload(NodeId, Round) const { return 1234; }
    void deliver(NodeId, NodeId, Payload, EdgeId, Round, Round) {}
    bool done(Round) const { return false; }
  } proto;
  SimOptions opts;
  opts.max_rounds = 10;
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_EQ(r.payload_bits, 2u);
}

}  // namespace
}  // namespace latgossip
