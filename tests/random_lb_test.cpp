// Tests for the randomized ℓ-local-broadcast subroutine and the EID
// discovery-phase ablation.

#include <gtest/gtest.h>

#include "analysis/distance.h"
#include "core/eid.h"
#include "core/random_local_broadcast.h"
#include "core/rr_broadcast.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"

namespace latgossip {
namespace {

struct RlbRun {
  SimResult sim;
  std::vector<Bitset> rumors;
};

RlbRun run_rlb(const WeightedGraph& g, Latency ell, std::uint64_t seed) {
  NetworkView view(g, true);
  RandomLocalBroadcast proto(
      view, ell, RandomLocalBroadcast::own_id_rumors(g.num_nodes()),
      Rng(seed));
  SimOptions opts;
  opts.stop_when_idle = false;
  opts.max_rounds = 2'000'000;
  RlbRun run;
  run.sim = run_gossip(g, proto, opts);
  run.rumors = proto.take_rumors();
  return run;
}

TEST(RandomLocalBroadcast, CompletesOnClique) {
  const auto g = make_clique(20);
  const RlbRun run = run_rlb(g, 1, 1);
  ASSERT_TRUE(run.sim.completed);
  EXPECT_TRUE(local_broadcast_complete(g, run.rumors));
}

TEST(RandomLocalBroadcast, CompletesOnWeightedGraphs) {
  Rng gen(3);
  auto g = make_erdos_renyi(24, 0.3, gen);
  assign_random_uniform_latency(g, 1, 4, gen);
  const RlbRun run = run_rlb(g, 4, 5);
  ASSERT_TRUE(run.sim.completed);
  EXPECT_TRUE(local_broadcast_complete(g, run.rumors));
}

TEST(RandomLocalBroadcast, EllCapRespected) {
  const auto g = build_graph(3, {{0, 1, 1}, {1, 2, 10}});
  const RlbRun run = run_rlb(g, 1, 7);
  ASSERT_TRUE(run.sim.completed);
  EXPECT_TRUE(run.rumors[0].test(1));
  EXPECT_FALSE(run.rumors[2].test(0));
}

TEST(RandomLocalBroadcast, SuperroundTiming) {
  auto g = make_cycle(10);
  assign_uniform_latency(g, 5);
  const RlbRun run = run_rlb(g, 5, 9);
  ASSERT_TRUE(run.sim.completed);
  // Exchanges only start at multiples of ell = 5; at least one
  // superround is needed.
  EXPECT_GE(run.sim.rounds, 5);
}

TEST(RandomLocalBroadcast, RequiresKnownLatencies) {
  const auto g = make_path(3);
  NetworkView view(g, false);
  EXPECT_THROW(RandomLocalBroadcast(
                   view, 1, RandomLocalBroadcast::own_id_rumors(3), Rng(1)),
               std::invalid_argument);
}

TEST(RandomLocalBroadcast, SeededRumorsRelayed) {
  const auto g = make_path(4);
  NetworkView view(g, true);
  auto initial = RandomLocalBroadcast::own_id_rumors(4);
  initial[0].set(3);
  RandomLocalBroadcast proto(view, 1, std::move(initial), Rng(11));
  SimOptions opts;
  opts.stop_when_idle = false;
  opts.max_rounds = 100'000;
  ASSERT_TRUE(run_gossip(g, proto, opts).completed);
  EXPECT_TRUE(proto.rumors()[1].test(3));
}

TEST(EidAblation, RandomizedDiscoveryAlsoSolvesAllToAll) {
  auto g = make_grid(4, 4);
  Rng latr(13);
  assign_random_uniform_latency(g, 1, 4, latr);
  const Latency d = weighted_diameter(g);
  Rng rng(17);
  EidOptions opts;
  opts.diameter_estimate = d;
  opts.randomized_local_broadcast = true;
  const EidOutcome out = run_eid(g, opts, own_id_rumors(16), rng);
  EXPECT_TRUE(out.all_to_all);
}

TEST(EidAblation, BothVariantsProduceFullSets) {
  const auto g = make_ring_of_cliques(3, 4, 3);
  const std::size_t n = g.num_nodes();
  const Latency d = weighted_diameter(g);
  for (bool randomized : {false, true}) {
    Rng rng(19);
    EidOptions opts;
    opts.diameter_estimate = d;
    opts.randomized_local_broadcast = randomized;
    const EidOutcome out = run_eid(g, opts, own_id_rumors(n), rng);
    EXPECT_TRUE(out.all_to_all) << "randomized=" << randomized;
  }
}

}  // namespace
}  // namespace latgossip
